//! The shard-aware client-side router.
//!
//! A [`ShardRouter`] sits between one application driver and N TpWIRE
//! bus segments (one `SpaceServerAgent` per segment) and gives the
//! application a single-space illusion:
//!
//! * **writes** fan out to the key's replica set with one
//!   [`RequestId`]-stamped sub-request per replica; the operation is
//!   acknowledged once the write quorum — always including the owner —
//!   has acked. Retries reuse their sub-request's identity, so the
//!   per-server duplicate caches of the exactly-once layer make
//!   replication idempotent.
//! * **takes** are only ever admitted at the key's owner shard
//!   (single-owner semantics: no cross-shard double-take); after the
//!   owner hands the tuple over, the other replicas are erased with
//!   idempotent exact-template takes. Keyless takes run in two phases:
//!   a scatter locate, then a take admitted at the match's owner only.
//! * **reads** route to the owner when the template pins the key field,
//!   falling back through the replica set when the owner misses or is
//!   unreachable; keyless templates scatter-gather across every shard
//!   with a per-shard deadline. A hit served away from the owner is a
//!   read-repair: it is counted, traced, and — when the key was never
//!   taken — the original identified write is re-issued to the lagging
//!   owner (same [`RequestId`], so a copy that did land is deduplicated
//!   rather than re-applied).
//! * **supervision integration**: a shard whose bus fast-fails against
//!   an Open breaker is marked degraded. Reads keep being served by
//!   replicas; writes either park in a per-shard queue flushed on a
//!   probe timer, or fail fast, per
//!   [`DegradedWritePolicy`].

use std::collections::{BTreeMap, BTreeSet};

use bytes::Bytes;
use tsbus_core::{NetDeliver, NetError, NetSend};
use tsbus_des::{Component, ComponentId, Context, Message, MessageExt, SimDuration, SimTime};
use tsbus_obs::{CounterId, Registry, Snapshot, TraceEvent, Tracer, TupleOpKind};
use tsbus_proto::{request_step, ProtoInstruments, ReplyDue, RequestStep, RequestTable, RetryDue};
use tsbus_tpwire::NodeId;
use tsbus_tuplespace::{Template, Tuple};
use tsbus_xmlwire::{
    server_message_from_wire, EncodeScratch, Request, RequestEnvelope, RequestId, Response,
    ServerMessage, WireFormat,
};

use crate::config::{DegradedWritePolicy, ShardConfig};
use crate::partition::{hash_tuple, hash_value, PartitionMap, Route};

/// An application-level operation handed to the router.
#[derive(Debug)]
pub struct ShardOp {
    /// Caller-chosen correlation id, echoed in [`ShardOpDone`].
    pub op: u64,
    /// The tuplespace request to route.
    pub request: Request,
}

/// The routed operation's final outcome, delivered to the application.
#[derive(Debug)]
pub struct ShardOpDone {
    /// The [`ShardOp::op`] correlation id.
    pub op: u64,
    /// The response (synthesized for scatter-gather operations).
    pub response: Response,
    /// Whether a degraded or unreachable shard was involved.
    pub degraded: bool,
    /// Sub-request sends charged to the operation.
    pub attempts: u32,
}

/// Retry/timeout knobs of the router's sub-request machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterPolicy {
    /// A sub-request whose reply has not arrived within this span is
    /// declared overdue and re-issued (same identity).
    pub reply_timeout: SimDuration,
    /// Idle wait before each re-issue.
    pub retry_delay: SimDuration,
    /// Total sends allowed per sub-request, the first included.
    pub max_attempts: u32,
    /// Per-shard gather deadline of a scatter read leg.
    pub scatter_deadline: SimDuration,
    /// Probe period for flushing a degraded shard's parked writes.
    pub degraded_retry_delay: SimDuration,
    /// `false` is the ablation arm: retries draw a FRESH identity each
    /// time, so the server-side duplicate caches cannot recognize them
    /// and a lost reply can re-apply — exactly the double-apply the
    /// sharded chaos invariants are built to catch.
    pub exactly_once: bool,
}

impl Default for RouterPolicy {
    fn default() -> Self {
        RouterPolicy {
            reply_timeout: SimDuration::from_millis(1_200),
            retry_delay: SimDuration::from_millis(150),
            max_attempts: 6,
            scatter_deadline: SimDuration::from_millis(1_500),
            degraded_retry_delay: SimDuration::from_millis(400),
            exactly_once: true,
        }
    }
}

/// Internal timer: a scatter leg's per-shard deadline expired.
#[derive(Debug)]
struct ScatterDeadline {
    seq: u64,
}

/// Internal timer: probe a degraded shard by flushing its parked subs.
#[derive(Debug)]
struct FlushQueue {
    shard: u8,
}

/// What one sub-request is doing for its operation.
#[derive(Debug, Clone)]
enum SubRole {
    /// Replica write; `slot` indexes the op's replica set (0 = owner).
    Write { slot: usize },
    /// Owner-shard take.
    Take,
    /// Keyed read probe; `pos` indexes the candidate (replica) list.
    KeyedRead { pos: usize },
    /// One leg of a scatter-gather read.
    ScatterLeg,
    /// Detached replica erase after a successful take.
    Erase,
    /// Detached read-repair write toward a lagging owner.
    Repair,
}

/// One in-flight sub-request — the layer-owned resume state carried as
/// the payload of a [`RequestTable`] entry. Attempt counting, retry
/// arming and timer staleness live in the entry, not here.
#[derive(Debug)]
struct SubOp {
    /// Owning application op (`None` for detached erase/repair subs).
    op: Option<u64>,
    shard: u8,
    role: SubRole,
    request: Request,
    /// Parked in the degraded queue, waiting for a flush probe.
    parked: bool,
}

/// How one scatter leg settled.
#[derive(Debug, Clone)]
enum Leg {
    Pending,
    Hit(Tuple),
    Miss,
    Failed,
}

#[derive(Debug)]
struct WriteState {
    acked: Vec<bool>,
    failed: Vec<bool>,
    quorum: u8,
    answered: bool,
}

#[derive(Debug)]
struct ReadState {
    /// Candidate shards, owner first.
    candidates: Vec<u8>,
    failures: usize,
    owner_failed: bool,
}

#[derive(Debug)]
struct ScatterState {
    legs: Vec<Leg>,
    /// Re-route the winner into an owner-shard take once gathered.
    take_after: bool,
}

#[derive(Debug)]
enum OpKind {
    Write(WriteState),
    Take,
    KeyedRead(ReadState),
    Scatter(ScatterState),
}

#[derive(Debug)]
struct OpState {
    kind: OpKind,
    degraded: bool,
    attempts: u32,
}

/// Registry handles and the typed trace stream of one router: the
/// standard `proto/*` lifecycle bundle (parking shape) plus the
/// shard-specific routing counters.
#[derive(Debug)]
struct RouterInstruments {
    registry: Registry,
    proto: ProtoInstruments,
    ops_write: CounterId,
    ops_take: CounterId,
    ops_read_keyed: CounterId,
    ops_read_scatter: CounterId,
    replica_writes: CounterId,
    quorum_acks: CounterId,
    quorum_failures: CounterId,
    replica_erases: CounterId,
    repair_writes: CounterId,
    read_repairs: CounterId,
    degraded_reads: CounterId,
    tracer: Tracer<TraceEvent>,
}

impl Default for RouterInstruments {
    fn default() -> Self {
        let mut registry = Registry::new();
        let proto = ProtoInstruments::with_parking(&mut registry);
        RouterInstruments {
            ops_write: registry.counter("shard/ops_write"),
            ops_take: registry.counter("shard/ops_take"),
            ops_read_keyed: registry.counter("shard/ops_read_keyed"),
            ops_read_scatter: registry.counter("shard/ops_read_scatter"),
            replica_writes: registry.counter("shard/replica_writes"),
            quorum_acks: registry.counter("shard/quorum_acks"),
            quorum_failures: registry.counter("shard/quorum_failures"),
            replica_erases: registry.counter("shard/replica_erases"),
            repair_writes: registry.counter("shard/repair_writes"),
            read_repairs: registry.counter("shard/read_repairs"),
            degraded_reads: registry.counter("shard/degraded_reads"),
            proto,
            registry,
            tracer: Tracer::disabled(),
        }
    }
}

impl RouterInstruments {
    /// Books one parked sub-request (the parking bundle registers it).
    fn inc_parked(&mut self) {
        if let Some(id) = self.proto.parked_subops {
            self.registry.inc(id);
        }
    }

    /// Books one degraded-queue flush.
    fn inc_flush(&mut self) {
        if let Some(id) = self.proto.queue_flushes {
            self.registry.inc(id);
        }
    }
}

/// The shard router component. See the module docs for semantics.
#[derive(Debug)]
pub struct ShardRouter {
    app: ComponentId,
    /// Router-side transport endpoint per shard.
    endpoints: Vec<ComponentId>,
    /// Each shard's server address on its own segment — globally
    /// distinct, so replies and transport errors identify their shard.
    server_nodes: Vec<NodeId>,
    map: PartitionMap,
    format: WireFormat,
    policy: RouterPolicy,
    degraded_writes: DegradedWritePolicy,
    write_quorum: u8,
    client_id: u64,
    /// The engine's outstanding-request table: seq allocation, the
    /// cumulative-ack settlement watermark, and one epoch-timed entry
    /// per in-flight sub-request. Failed sub-requests never settle, so
    /// the watermark stalls below them and the servers keep their dedup
    /// entries alive.
    table: RequestTable<SubOp>,
    ops: BTreeMap<u64, OpState>,
    degraded: Vec<bool>,
    flush_armed: Vec<bool>,
    /// Last identified write per key: `key hash → (shard, seq)` per
    /// replica — the identities read-repair may re-issue.
    write_log: BTreeMap<u64, Vec<(u8, u64)>>,
    /// Keys whose tuple was handed to the application by a take; a
    /// repair write for them would resurrect consumed data.
    taken_keys: BTreeSet<u64>,
    obs: RouterInstruments,
    /// Reused encode buffers for outgoing sub-requests.
    scratch: EncodeScratch,
}

impl ShardRouter {
    /// Creates a router for `app`, speaking through one endpoint per
    /// shard to the server at the matching node.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint/node lists disagree with the map's shard
    /// count — the cluster builder wires these together.
    #[must_use]
    pub fn new(
        app: ComponentId,
        endpoints: Vec<ComponentId>,
        server_nodes: Vec<NodeId>,
        map: PartitionMap,
        cfg: &ShardConfig,
    ) -> Self {
        let n = usize::from(map.shards());
        assert_eq!(endpoints.len(), n, "one endpoint per shard");
        assert_eq!(server_nodes.len(), n, "one server node per shard");
        ShardRouter {
            app,
            endpoints,
            server_nodes,
            map,
            format: WireFormat::Xml,
            policy: RouterPolicy::default(),
            degraded_writes: cfg.degraded_writes,
            write_quorum: cfg.replication.write_quorum,
            client_id: 1,
            table: RequestTable::new(),
            ops: BTreeMap::new(),
            degraded: vec![false; n],
            flush_armed: vec![false; n],
            write_log: BTreeMap::new(),
            taken_keys: BTreeSet::new(),
            obs: RouterInstruments::default(),
            scratch: EncodeScratch::new(),
        }
    }

    /// Switches the wire encoding (builder style).
    #[must_use]
    pub fn with_format(mut self, format: WireFormat) -> Self {
        self.format = format;
        self
    }

    /// Replaces the retry/timeout policy (builder style).
    #[must_use]
    pub fn with_policy(mut self, policy: RouterPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the router's exactly-once client id (builder style).
    #[must_use]
    pub fn with_client_id(mut self, client_id: u64) -> Self {
        self.client_id = client_id;
        self
    }

    /// The partition map the router routes by.
    #[must_use]
    pub fn map(&self) -> &PartitionMap {
        &self.map
    }

    /// Whether `shard` is currently marked degraded.
    #[must_use]
    pub fn is_degraded(&self, shard: u8) -> bool {
        self.degraded[usize::from(shard)]
    }

    /// Captures the router's metrics at instant `now`: the `proto/*`
    /// lifecycle paths plus the `shard/*` routing counters.
    #[must_use]
    pub fn metrics(&self, now: SimTime) -> Snapshot {
        self.obs.registry.snapshot(now)
    }

    /// Reads served away from the owner (counted as repairs).
    #[must_use]
    pub fn read_repairs(&self) -> u64 {
        self.obs.registry.count(self.obs.read_repairs)
    }

    /// Reads served by a replica because the owner was unreachable.
    #[must_use]
    pub fn degraded_reads(&self) -> u64 {
        self.obs.registry.count(self.obs.degraded_reads)
    }

    /// Transport fast-fails observed (Open-breaker fences).
    #[must_use]
    pub fn fast_fails(&self) -> u64 {
        self.obs.proto.fast_fail_count(&self.obs.registry)
    }

    /// Sub-request re-sends.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.obs.registry.count(self.obs.proto.retries)
    }

    /// Sub-requests declared overdue (reply timeout or leg deadline).
    #[must_use]
    pub fn reply_timeouts(&self) -> u64 {
        self.obs.registry.count(self.obs.proto.reply_timeouts)
    }

    /// Replies discarded by id correlation.
    #[must_use]
    pub fn stale_replies(&self) -> u64 {
        self.obs.registry.count(self.obs.proto.stale_replies)
    }

    /// Writes acknowledged at quorum.
    #[must_use]
    pub fn quorum_acks(&self) -> u64 {
        self.obs.registry.count(self.obs.quorum_acks)
    }

    /// Writes whose quorum became unreachable.
    #[must_use]
    pub fn quorum_failures(&self) -> u64 {
        self.obs.registry.count(self.obs.quorum_failures)
    }

    /// Replica erases issued after successful takes.
    #[must_use]
    pub fn replica_erases(&self) -> u64 {
        self.obs.registry.count(self.obs.replica_erases)
    }

    /// Repair writes re-issued toward lagging owners.
    #[must_use]
    pub fn repair_writes(&self) -> u64 {
        self.obs.registry.count(self.obs.repair_writes)
    }

    /// Sub-requests parked against degraded shards.
    #[must_use]
    pub fn parked_subops(&self) -> u64 {
        self.obs
            .proto
            .parked_subops
            .map_or(0, |id| self.obs.registry.count(id))
    }

    /// Arms (or replaces) the typed trace stream
    /// (`ShardRoute`/`Replicate`/`ReadRepair` events).
    pub fn set_tracer(&mut self, tracer: Tracer<TraceEvent>) {
        self.obs.tracer = tracer;
    }

    /// The typed trace stream.
    #[must_use]
    pub fn trace(&self) -> &Tracer<TraceEvent> {
        &self.obs.tracer
    }

    /// The stable hash of a tuple's routing key (its key field when
    /// present, the whole tuple otherwise).
    fn key_hash_of(&self, tuple: &Tuple) -> u64 {
        match tuple.field(self.map.key_field()) {
            Some(key) => hash_value(key),
            None => hash_tuple(tuple),
        }
    }

    fn op_kind_of(role: &SubRole) -> TupleOpKind {
        match role {
            SubRole::Write { .. } | SubRole::Repair => TupleOpKind::Write,
            SubRole::Take | SubRole::Erase => TupleOpKind::Take,
            SubRole::KeyedRead { .. } | SubRole::ScatterLeg => TupleOpKind::Read,
        }
    }

    /// Encodes and transmits the sub-request registered under `seq`,
    /// arming its reply timer (or, on the first send, the scatter
    /// deadline).
    fn transmit(&mut self, ctx: &mut Context<'_>, seq: u64, first_send: bool) {
        let Some(entry) = self.table.get(seq) else {
            return;
        };
        let sub = &entry.payload;
        let shard = usize::from(sub.shard);
        let scatter = matches!(sub.role, SubRole::ScatterLeg);
        let envelope = RequestEnvelope::identified(
            RequestId {
                client: self.client_id,
                seq,
            },
            self.table.ack(),
            sub.request.clone(),
        );
        let payload = Bytes::copy_from_slice(self.scratch.request_envelope(&envelope, self.format));
        let endpoint = self.endpoints[shard];
        let to = self.server_nodes[shard];
        let token = entry.stamp();
        let trace_shard = sub.shard;
        let trace_op = Self::op_kind_of(&sub.role);
        let op = sub.op;
        if let Some(op) = op {
            if let Some(state) = self.ops.get_mut(&op) {
                state.attempts += 1;
            }
        }
        self.obs.tracer.emit(TraceEvent::ShardRoute {
            at: ctx.now(),
            shard: trace_shard,
            op: trace_op,
            scatter,
        });
        ctx.send(endpoint, NetSend { to, payload });
        if scatter {
            if first_send {
                ctx.schedule_self_in(self.policy.scatter_deadline, ScatterDeadline { seq });
            }
        } else {
            ctx.schedule_self_in(self.policy.reply_timeout, ReplyDue { key: seq, token });
        }
    }

    /// Registers and transmits a new sub-request; returns its seq.
    fn send_sub(
        &mut self,
        ctx: &mut Context<'_>,
        op: Option<u64>,
        shard: u8,
        role: SubRole,
        request: Request,
    ) -> u64 {
        let seq = self.table.open(SubOp {
            op,
            shard,
            role,
            request,
            parked: false,
        });
        self.transmit(ctx, seq, true);
        seq
    }

    /// Completes an application op toward the driver. `remove` keeps a
    /// write op alive for its trailing replica acks when `false`.
    fn answer(&mut self, ctx: &mut Context<'_>, op: u64, response: Response, remove: bool) {
        let Some(state) = self.ops.get(&op) else {
            return;
        };
        let done = ShardOpDone {
            op,
            response,
            degraded: state.degraded,
            attempts: state.attempts,
        };
        ctx.send(self.app, done);
        if remove {
            self.ops.remove(&op);
        }
    }

    /// Entry point for one application op.
    fn start_op(&mut self, ctx: &mut Context<'_>, op: u64, request: Request) {
        match request {
            Request::Write { ref tuple, .. } => {
                self.obs.registry.inc(self.obs.ops_write);
                let replicas = self.map.replicas_of_tuple(tuple);
                let quorum = self.write_quorum.min(replicas.len() as u8);
                self.ops.insert(
                    op,
                    OpState {
                        kind: OpKind::Write(WriteState {
                            acked: vec![false; replicas.len()],
                            failed: vec![false; replicas.len()],
                            quorum,
                            answered: false,
                        }),
                        degraded: false,
                        attempts: 0,
                    },
                );
                let key = self.key_hash_of(tuple);
                let mut log = Vec::with_capacity(replicas.len());
                for (slot, shard) in replicas.into_iter().enumerate() {
                    self.obs.registry.inc(self.obs.replica_writes);
                    let seq = self.send_sub(
                        ctx,
                        Some(op),
                        shard,
                        SubRole::Write { slot },
                        request.clone(),
                    );
                    log.push((shard, seq));
                }
                self.write_log.insert(key, log);
            }
            Request::Take { ref template, .. } | Request::TakeIfExists { ref template } => {
                self.obs.registry.inc(self.obs.ops_take);
                match self.map.route_of_template(template) {
                    Route::Owner(owner) => {
                        self.ops.insert(
                            op,
                            OpState {
                                kind: OpKind::Take,
                                degraded: false,
                                attempts: 0,
                            },
                        );
                        self.send_sub(ctx, Some(op), owner, SubRole::Take, request);
                    }
                    Route::Scatter => {
                        // Two-phase keyless take: locate a match first,
                        // then admit the take at the match's owner only.
                        self.start_scatter(ctx, op, template.clone(), true);
                    }
                }
            }
            Request::Read { ref template, .. } | Request::ReadIfExists { ref template } => {
                match self.map.route_of_template(template) {
                    Route::Owner(owner) => {
                        self.obs.registry.inc(self.obs.ops_read_keyed);
                        let candidates = self.map.replica_set(owner);
                        let first = candidates[0];
                        self.ops.insert(
                            op,
                            OpState {
                                kind: OpKind::KeyedRead(ReadState {
                                    candidates,
                                    failures: 0,
                                    owner_failed: false,
                                }),
                                degraded: false,
                                attempts: 0,
                            },
                        );
                        let probe = Request::ReadIfExists {
                            template: template.clone(),
                        };
                        self.send_sub(ctx, Some(op), first, SubRole::KeyedRead { pos: 0 }, probe);
                    }
                    Route::Scatter => {
                        self.obs.registry.inc(self.obs.ops_read_scatter);
                        self.start_scatter(ctx, op, template.clone(), false);
                    }
                }
            }
            other => {
                // Counts, subscriptions and renewals are per-space
                // concepts; a sharded tier would need merge semantics
                // the router deliberately does not fake.
                ctx.send(
                    self.app,
                    ShardOpDone {
                        op,
                        response: Response::Error {
                            message: format!("request not routable across shards: {other:?}"),
                        },
                        degraded: false,
                        attempts: 0,
                    },
                );
            }
        }
    }

    fn start_scatter(
        &mut self,
        ctx: &mut Context<'_>,
        op: u64,
        template: Template,
        take_after: bool,
    ) {
        let shards = self.map.shards();
        self.ops.insert(
            op,
            OpState {
                kind: OpKind::Scatter(ScatterState {
                    legs: vec![Leg::Pending; usize::from(shards)],
                    take_after,
                }),
                degraded: false,
                attempts: 0,
            },
        );
        for shard in 0..shards {
            let probe = Request::ReadIfExists {
                template: template.clone(),
            };
            self.send_sub(ctx, Some(op), shard, SubRole::ScatterLeg, probe);
        }
    }

    /// Parks a sub-request against its degraded shard and arms the
    /// flush probe.
    fn park(&mut self, ctx: &mut Context<'_>, seq: u64) {
        let Some(entry) = self.table.get_mut(seq) else {
            return;
        };
        let sub = &mut entry.payload;
        if sub.parked {
            return;
        }
        sub.parked = true;
        let shard = sub.shard;
        let op = sub.op;
        if let Some(op) = op {
            if let Some(state) = self.ops.get_mut(&op) {
                state.degraded = true;
            }
        }
        self.obs.inc_parked();
        let idx = usize::from(shard);
        if !self.flush_armed[idx] {
            self.flush_armed[idx] = true;
            ctx.schedule_self_in(self.policy.degraded_retry_delay, FlushQueue { shard });
        }
    }

    /// Retry ladder of a retryable sub-request: park against a degraded
    /// shard (Queue policy), re-send while attempts remain, fail
    /// otherwise.
    fn maybe_retry(&mut self, ctx: &mut Context<'_>, seq: u64) {
        let Some(entry) = self.table.get(seq) else {
            return;
        };
        let shard = usize::from(entry.payload.shard);
        let attempts = entry.attempts();
        let parkable = matches!(
            entry.payload.role,
            SubRole::Write { .. } | SubRole::Take | SubRole::Erase | SubRole::Repair
        );
        if self.degraded[shard]
            && parkable
            && matches!(self.degraded_writes, DegradedWritePolicy::Queue)
        {
            self.park(ctx, seq);
        } else if matches!(
            request_step(attempts, self.policy.max_attempts),
            RequestStep::Retry
        ) {
            // The one-shot suppresses duplicate scheduling: while a
            // delay is already armed, `arm_retry` refuses a second one.
            if let Some(entry) = self.table.get_mut(seq) {
                if let Some(token) = entry.arm_retry() {
                    ctx.schedule_self_in(self.policy.retry_delay, RetryDue { key: seq, token });
                }
            }
        } else {
            self.sub_failed(ctx, seq);
        }
    }

    /// A sub-request is out of options; fold the failure into its op.
    fn sub_failed(&mut self, ctx: &mut Context<'_>, seq: u64) {
        let Some(entry) = self.table.remove(seq) else {
            return;
        };
        let sub = entry.payload;
        match sub.role {
            SubRole::Write { slot } => {
                if let Some(op) = sub.op {
                    self.fail_write_slot(ctx, op, slot);
                }
            }
            SubRole::Take => {
                if let Some(op) = sub.op {
                    if let Some(state) = self.ops.get_mut(&op) {
                        state.degraded = true;
                    }
                    self.answer(
                        ctx,
                        op,
                        Response::Error {
                            message: "take: owner shard unreachable".into(),
                        },
                        true,
                    );
                }
            }
            SubRole::KeyedRead { pos } => {
                if let Some(op) = sub.op {
                    self.advance_keyed_read(ctx, op, &sub.request, pos, true);
                }
            }
            SubRole::ScatterLeg => self.settle_leg(ctx, &sub, Leg::Failed),
            SubRole::Erase | SubRole::Repair => {}
        }
    }

    /// Marks one replica-write slot failed and decides the op's fate:
    /// the op fails as soon as the owner is gone (its ack is mandatory)
    /// or the quorum is arithmetically unreachable.
    fn fail_write_slot(&mut self, ctx: &mut Context<'_>, op: u64, slot: usize) {
        let (fail_now, resolved) = {
            let Some(state) = self.ops.get_mut(&op) else {
                return;
            };
            state.degraded = true;
            let OpKind::Write(w) = &mut state.kind else {
                return;
            };
            w.failed[slot] = true;
            let possible = w
                .acked
                .iter()
                .zip(&w.failed)
                .filter(|(a, f)| **a || !**f)
                .count() as u8;
            let fail_now = !w.answered && (w.failed[0] || possible < w.quorum);
            if fail_now {
                w.answered = true;
            }
            let resolved = w.acked.iter().zip(&w.failed).all(|(a, f)| *a || *f);
            (fail_now, resolved)
        };
        if fail_now {
            self.obs.registry.inc(self.obs.quorum_failures);
            self.answer(
                ctx,
                op,
                Response::Error {
                    message: "write quorum unreachable".into(),
                },
                false,
            );
        }
        if resolved {
            self.ops.remove(&op);
        }
    }

    /// Moves a keyed read to its next replica candidate, or finishes.
    fn advance_keyed_read(
        &mut self,
        ctx: &mut Context<'_>,
        op: u64,
        probe: &Request,
        pos: usize,
        failed: bool,
    ) {
        let next = {
            let Some(state) = self.ops.get_mut(&op) else {
                return;
            };
            let degraded = &mut state.degraded;
            let OpKind::KeyedRead(r) = &mut state.kind else {
                return;
            };
            if failed {
                r.failures += 1;
                *degraded = true;
                if pos == 0 {
                    r.owner_failed = true;
                }
            }
            if pos + 1 < r.candidates.len() {
                Ok(r.candidates[pos + 1])
            } else {
                Err(r.failures == r.candidates.len())
            }
        };
        match next {
            Ok(shard) => {
                self.send_sub(
                    ctx,
                    Some(op),
                    shard,
                    SubRole::KeyedRead { pos: pos + 1 },
                    probe.clone(),
                );
            }
            Err(all_failed) => {
                let response = if all_failed {
                    Response::Error {
                        message: "read: all replicas unreachable".into(),
                    }
                } else {
                    Response::Entry { tuple: None }
                };
                self.answer(ctx, op, response, true);
            }
        }
    }

    /// Records one scatter leg's outcome; gathers once all legs settle.
    fn settle_leg(&mut self, ctx: &mut Context<'_>, sub: &SubOp, outcome: Leg) {
        let Some(op) = sub.op else {
            return;
        };
        let complete = {
            let Some(state) = self.ops.get_mut(&op) else {
                return;
            };
            let degraded = &mut state.degraded;
            let OpKind::Scatter(s) = &mut state.kind else {
                return;
            };
            let idx = usize::from(sub.shard);
            if matches!(s.legs[idx], Leg::Pending) {
                if matches!(outcome, Leg::Failed) {
                    *degraded = true;
                }
                s.legs[idx] = outcome;
            }
            s.legs.iter().all(|l| !matches!(l, Leg::Pending))
        };
        if complete {
            self.finish_scatter(ctx, op);
        }
    }

    /// Gathers a completed scatter: the winning hit is the one already
    /// at its owner shard if any, else the hit from the lowest shard
    /// index — a deterministic choice that never depends on reply
    /// arrival order.
    fn finish_scatter(&mut self, ctx: &mut Context<'_>, op: u64) {
        let (winner, take_after, failed_legs) = {
            let Some(state) = self.ops.get(&op) else {
                return;
            };
            let OpKind::Scatter(s) = &state.kind else {
                return;
            };
            let mut first_hit: Option<(u8, Tuple)> = None;
            let mut at_owner: Option<(u8, Tuple)> = None;
            for (i, leg) in s.legs.iter().enumerate() {
                if let Leg::Hit(t) = leg {
                    let shard = i as u8;
                    if self.map.owner_of_tuple(t) == shard {
                        at_owner = Some((shard, t.clone()));
                        break;
                    }
                    if first_hit.is_none() {
                        first_hit = Some((shard, t.clone()));
                    }
                }
            }
            let failed: Vec<bool> = s.legs.iter().map(|l| matches!(l, Leg::Failed)).collect();
            (at_owner.or(first_hit), s.take_after, failed)
        };
        match winner {
            Some((_, t)) if take_after => {
                let owner = self.map.owner_of_tuple(&t);
                if let Some(state) = self.ops.get_mut(&op) {
                    state.kind = OpKind::Take;
                }
                self.send_sub(
                    ctx,
                    Some(op),
                    owner,
                    SubRole::Take,
                    Request::TakeIfExists {
                        template: Template::exact(&t),
                    },
                );
            }
            Some((shard, t)) => {
                let owner = self.map.owner_of_tuple(&t);
                if shard != owner {
                    self.obs.registry.inc(self.obs.read_repairs);
                    let degraded = failed_legs[usize::from(owner)];
                    if degraded {
                        self.obs.registry.inc(self.obs.degraded_reads);
                    }
                    self.obs.tracer.emit(TraceEvent::ReadRepair {
                        at: ctx.now(),
                        shard: owner,
                        degraded,
                    });
                    self.maybe_repair(ctx, &t);
                }
                self.answer(ctx, op, Response::Entry { tuple: Some(t) }, true);
            }
            None => self.answer(ctx, op, Response::Entry { tuple: None }, true),
        }
    }

    /// Re-issues the original identified write toward a lagging owner —
    /// never for taken keys (that would resurrect consumed data), never
    /// while the original sub-request is still in flight or parked (it
    /// IS the repair), and only under the identity the write already
    /// used, so a copy that did land is deduplicated, not re-applied.
    fn maybe_repair(&mut self, ctx: &mut Context<'_>, tuple: &Tuple) {
        let key = self.key_hash_of(tuple);
        if self.taken_keys.contains(&key) {
            return;
        }
        let owner = self.map.owner_of_tuple(tuple);
        let Some(log) = self.write_log.get(&key) else {
            return;
        };
        let Some(&(_, seq)) = log.iter().find(|(shard, _)| *shard == owner) else {
            return;
        };
        if self.table.contains(seq) {
            return;
        }
        self.obs.registry.inc(self.obs.repair_writes);
        self.table.restore(
            seq,
            SubOp {
                op: None,
                shard: owner,
                role: SubRole::Repair,
                request: Request::Write {
                    tuple: tuple.clone(),
                    lease_ns: None,
                },
                parked: false,
            },
        );
        self.transmit(ctx, seq, false);
    }

    fn on_deliver(&mut self, ctx: &mut Context<'_>, deliver: &NetDeliver) {
        let Ok(message) = server_message_from_wire(&deliver.payload) else {
            self.obs.registry.inc(self.obs.proto.stale_replies);
            return;
        };
        let ServerMessage::Response { re, response } = message else {
            // The router holds no subscriptions; events are not for it.
            return;
        };
        let Some(id) = re else {
            self.obs.registry.inc(self.obs.proto.stale_replies);
            return;
        };
        if id.client != self.client_id {
            self.obs.registry.inc(self.obs.proto.stale_replies);
            return;
        }
        // The server completed this seq whether or not anyone is still
        // waiting: settle it so its dedup entry can eventually retire.
        self.table.settle(id.seq);
        let Some(entry) = self.table.remove(id.seq) else {
            self.obs.registry.inc(self.obs.proto.stale_replies);
            return;
        };
        let sub = entry.payload;
        // A reply is proof of life.
        self.degraded[usize::from(sub.shard)] = false;
        match sub.role {
            SubRole::Write { slot } => self.on_write_reply(ctx, &sub, slot, response),
            SubRole::Take => self.on_take_reply(ctx, &sub, response),
            SubRole::KeyedRead { pos } => self.on_keyed_read_reply(ctx, &sub, pos, response),
            SubRole::ScatterLeg => {
                let outcome = match response {
                    Response::Entry { tuple: Some(t) } => Leg::Hit(t),
                    Response::Entry { tuple: None } => Leg::Miss,
                    _ => Leg::Failed,
                };
                self.settle_leg(ctx, &sub, outcome);
            }
            SubRole::Erase | SubRole::Repair => {}
        }
    }

    fn on_write_reply(
        &mut self,
        ctx: &mut Context<'_>,
        sub: &SubOp,
        slot: usize,
        response: Response,
    ) {
        let Some(op) = sub.op else {
            return;
        };
        if !matches!(response, Response::WriteAck) {
            // A server-level error on a write: the replica refused, not
            // lost — no point retrying the same request.
            self.fail_write_slot(ctx, op, slot);
            return;
        }
        let outcome = self.ops.get_mut(&op).and_then(|state| {
            let OpKind::Write(w) = &mut state.kind else {
                return None;
            };
            w.acked[slot] = true;
            let acked = w.acked.iter().filter(|a| **a).count() as u8;
            let reached = !w.answered && acked >= w.quorum && w.acked[0];
            if reached {
                w.answered = true;
            }
            let resolved = w.acked.iter().zip(&w.failed).all(|(a, f)| *a || *f);
            Some((acked, reached, resolved))
        });
        let Some((acked_count, reached_quorum, resolved)) = outcome else {
            return;
        };
        self.obs.tracer.emit(TraceEvent::Replicate {
            at: ctx.now(),
            shard: sub.shard,
            acked: acked_count,
            quorum: reached_quorum,
        });
        if reached_quorum {
            self.obs.registry.inc(self.obs.quorum_acks);
            self.answer(ctx, op, Response::WriteAck, false);
        }
        if resolved {
            self.ops.remove(&op);
        }
    }

    fn on_take_reply(&mut self, ctx: &mut Context<'_>, sub: &SubOp, response: Response) {
        let Some(op) = sub.op else {
            return;
        };
        match response {
            Response::Entry { tuple: Some(t) } => {
                let key = self.key_hash_of(&t);
                self.taken_keys.insert(key);
                self.answer(
                    ctx,
                    op,
                    Response::Entry {
                        tuple: Some(t.clone()),
                    },
                    true,
                );
                // The owner surrendered the tuple; erase the copies so
                // replicas converge. Erases are detached and idempotent
                // (exact template: a second erase finds nothing).
                for shard in self.map.replicas_of_tuple(&t) {
                    if shard != sub.shard {
                        self.obs.registry.inc(self.obs.replica_erases);
                        self.send_sub(
                            ctx,
                            None,
                            shard,
                            SubRole::Erase,
                            Request::TakeIfExists {
                                template: Template::exact(&t),
                            },
                        );
                    }
                }
            }
            Response::Entry { tuple: None } => {
                self.answer(ctx, op, Response::Entry { tuple: None }, true);
            }
            Response::Error { message } => {
                self.answer(ctx, op, Response::Error { message }, true);
            }
            other => {
                self.answer(
                    ctx,
                    op,
                    Response::Error {
                        message: format!("unexpected take reply: {other:?}"),
                    },
                    true,
                );
            }
        }
    }

    fn on_keyed_read_reply(
        &mut self,
        ctx: &mut Context<'_>,
        sub: &SubOp,
        pos: usize,
        response: Response,
    ) {
        let Some(op) = sub.op else {
            return;
        };
        match response {
            Response::Entry { tuple: Some(t) } => {
                if pos > 0 {
                    let info = self.ops.get(&op).and_then(|state| match &state.kind {
                        OpKind::KeyedRead(r) => Some((r.candidates[0], r.owner_failed)),
                        _ => None,
                    });
                    if let Some((owner, owner_failed)) = info {
                        self.obs.registry.inc(self.obs.read_repairs);
                        if owner_failed {
                            self.obs.registry.inc(self.obs.degraded_reads);
                        }
                        self.obs.tracer.emit(TraceEvent::ReadRepair {
                            at: ctx.now(),
                            shard: owner,
                            degraded: owner_failed,
                        });
                        self.maybe_repair(ctx, &t);
                    }
                }
                self.answer(ctx, op, Response::Entry { tuple: Some(t) }, true);
            }
            Response::Entry { tuple: None } => {
                self.advance_keyed_read(ctx, op, &sub.request, pos, false);
            }
            _ => self.advance_keyed_read(ctx, op, &sub.request, pos, true),
        }
    }

    fn on_net_error(&mut self, ctx: &mut Context<'_>, error: &NetError) {
        let Some(idx) = self.server_nodes.iter().position(|n| *n == error.to) else {
            return;
        };
        let shard = idx as u8;
        if error.fast {
            self.obs.proto.fast_fail(&mut self.obs.registry);
            self.degraded[idx] = true;
        }
        // The transport error does not name a seq, so every in-flight
        // sub-request toward that shard is treated as failed. That is an
        // over-approximation, and a safe one: write/take retries reuse
        // their identity (idempotent), reads at worst re-probe.
        let seqs: Vec<u64> = self
            .table
            .iter()
            .filter(|(_, e)| e.payload.shard == shard && !e.payload.parked)
            .map(|(seq, _)| seq)
            .collect();
        for seq in seqs {
            let Some(role) = self.table.get(seq).map(|e| e.payload.role.clone()) else {
                continue;
            };
            match role {
                SubRole::ScatterLeg => {
                    if let Some(entry) = self.table.remove(seq) {
                        self.settle_leg(ctx, &entry.payload, Leg::Failed);
                    }
                }
                SubRole::KeyedRead { .. } => self.sub_failed(ctx, seq),
                _ if error.fast => match self.degraded_writes {
                    DegradedWritePolicy::Queue => self.park(ctx, seq),
                    DegradedWritePolicy::FastFail => self.sub_failed(ctx, seq),
                },
                _ => self.maybe_retry(ctx, seq),
            }
        }
    }

    fn on_timeout(&mut self, ctx: &mut Context<'_>, timeout: &ReplyDue) {
        let seq = timeout.key;
        let Some(entry) = self.table.get(seq) else {
            return;
        };
        // Deadline tokens are per-attempt: a token stamped before the
        // current attempt (or while an old flush re-send is superseded)
        // is stale and the firing is a no-op.
        if !entry.is_current(timeout.token) || entry.payload.parked {
            return;
        }
        match entry.payload.role {
            // Legs live and die by the scatter deadline.
            SubRole::ScatterLeg => {}
            // A read probe that timed out falls through to the next
            // replica rather than hammering the same one.
            SubRole::KeyedRead { .. } => {
                self.obs.registry.inc(self.obs.proto.reply_timeouts);
                self.sub_failed(ctx, seq);
            }
            _ => {
                self.obs.registry.inc(self.obs.proto.reply_timeouts);
                self.maybe_retry(ctx, seq);
            }
        }
    }

    fn on_retry(&mut self, ctx: &mut Context<'_>, retry: &RetryDue) {
        let seq = retry.key;
        let (shard, parkable) = {
            let Some(entry) = self.table.get_mut(seq) else {
                return;
            };
            // The firing consumes the armed delay whether or not the
            // sub is parked — the engine's one-shot enforces what used
            // to be a hand-maintained `retry_armed` flag (a sub parked
            // mid-delay with a stale flag could never re-arm after its
            // flush probe, wedging the operation).
            if !entry.fire_retry(retry.token) {
                return;
            }
            if entry.payload.parked {
                // Parked while the delay ran; the flush probe owns it.
                return;
            }
            (
                usize::from(entry.payload.shard),
                matches!(
                    entry.payload.role,
                    SubRole::Write { .. } | SubRole::Take | SubRole::Erase | SubRole::Repair
                ),
            )
        };
        // The shard may have degraded while the retry delay ran.
        if self.degraded[shard]
            && parkable
            && matches!(self.degraded_writes, DegradedWritePolicy::Queue)
        {
            self.park(ctx, seq);
            return;
        }
        self.obs.registry.inc(self.obs.proto.retries);
        if self.policy.exactly_once {
            if let Some(entry) = self.table.get_mut(seq) {
                entry.next_attempt();
            }
            self.transmit(ctx, seq, false);
        } else {
            // Ablation: a fresh identity per attempt. The server cannot
            // tell the retry from a new request, so a lost reply means
            // the operation applies twice.
            let Some(seq) = self.table.rekey(seq) else {
                return;
            };
            if let Some(entry) = self.table.get_mut(seq) {
                entry.next_attempt();
            }
            self.transmit(ctx, seq, false);
        }
    }

    fn on_deadline(&mut self, ctx: &mut Context<'_>, deadline: &ScatterDeadline) {
        let Some(entry) = self.table.remove(deadline.seq) else {
            return;
        };
        self.obs.registry.inc(self.obs.proto.reply_timeouts);
        self.settle_leg(ctx, &entry.payload, Leg::Failed);
    }

    fn on_flush(&mut self, ctx: &mut Context<'_>, flush: &FlushQueue) {
        let idx = usize::from(flush.shard);
        self.flush_armed[idx] = false;
        let parked: Vec<u64> = self
            .table
            .iter()
            .filter(|(_, e)| e.payload.shard == flush.shard && e.payload.parked)
            .map(|(seq, _)| seq)
            .collect();
        if parked.is_empty() {
            return;
        }
        self.obs.inc_flush();
        for seq in parked {
            if let Some(entry) = self.table.get_mut(seq) {
                // A flush probe is not a fresh attempt: under the Queue
                // policy a long outage parks writes indefinitely instead
                // of burning their attempt budget. (No epoch bump — an
                // older reply deadline for this attempt stays valid.)
                entry.payload.parked = false;
            }
            self.transmit(ctx, seq, false);
        }
    }
}

impl Component for ShardRouter {
    fn handle(&mut self, ctx: &mut Context<'_>, msg: Box<dyn Message>) {
        let msg = match msg.downcast::<ShardOp>() {
            Ok(op) => {
                self.start_op(ctx, op.op, op.request);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<ReplyDue>() {
            Ok(timeout) => {
                self.on_timeout(ctx, &timeout);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RetryDue>() {
            Ok(retry) => {
                self.on_retry(ctx, &retry);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<ScatterDeadline>() {
            Ok(deadline) => {
                self.on_deadline(ctx, &deadline);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<FlushQueue>() {
            Ok(flush) => {
                self.on_flush(ctx, &flush);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<NetDeliver>() {
            Ok(deliver) => {
                self.on_deliver(ctx, &deliver);
                return;
            }
            Err(m) => m,
        };
        if let Ok(error) = msg.downcast::<NetError>() {
            self.on_net_error(ctx, &error);
        }
    }
}
