//! Shard-tier configuration: shard count, replication factor, write
//! quorum, key routing — all validated up front with a typed error
//! (the `Result`-returning sibling of the `SupervisionConfig` validation
//! pass), and serialized into a canonical key so the lab campaign cache
//! distinguishes every sim-affecting parameter.

use std::fmt;
use std::str::FromStr;

/// Hard ceiling on the shard count: each shard claims its own bus segment
/// and a globally distinct server node id, and sweeps beyond this stop
/// measuring anything the paper's n-wire story can absorb.
pub const MAX_SHARDS: u8 = 64;

/// Why a shard-tier configuration was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardConfigError {
    /// The tier needs at least one shard.
    ZeroShards,
    /// More shards than [`MAX_SHARDS`].
    TooManyShards {
        /// The offending count.
        shards: u8,
    },
    /// The replication factor must be at least 1 (the owner itself).
    ZeroReplicas,
    /// R > N: a key cannot have more distinct replicas than shards.
    ReplicasExceedShards {
        /// Requested replication factor.
        replicas: u8,
        /// Available shards.
        shards: u8,
    },
    /// A write quorum of zero would acknowledge writes nobody stored.
    ZeroQuorum,
    /// W > R: the quorum can never assemble.
    QuorumExceedsReplicas {
        /// Requested write quorum.
        quorum: u8,
        /// Available replicas.
        replicas: u8,
    },
    /// The hash ring needs at least one virtual node per shard.
    ZeroVnodes,
    /// A fixed keyless fallback shard outside `0..shards`.
    FixedShardOutOfRange {
        /// The configured fallback shard.
        shard: u8,
        /// Available shards.
        shards: u8,
    },
    /// A canonical key string did not parse back into a configuration.
    MalformedKey {
        /// What was wrong with it.
        detail: String,
    },
}

impl fmt::Display for ShardConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardConfigError::ZeroShards => write!(f, "shard count must be at least 1"),
            ShardConfigError::TooManyShards { shards } => {
                write!(f, "{shards} shards exceeds the ceiling of {MAX_SHARDS}")
            }
            ShardConfigError::ZeroReplicas => write!(f, "replication factor must be at least 1"),
            ShardConfigError::ReplicasExceedShards { replicas, shards } => write!(
                f,
                "replication factor {replicas} exceeds the {shards} available shard(s)"
            ),
            ShardConfigError::ZeroQuorum => write!(f, "write quorum must be at least 1"),
            ShardConfigError::QuorumExceedsReplicas { quorum, replicas } => write!(
                f,
                "write quorum {quorum} exceeds the {replicas} replica(s) per key"
            ),
            ShardConfigError::ZeroVnodes => {
                write!(f, "the hash ring needs at least 1 virtual node per shard")
            }
            ShardConfigError::FixedShardOutOfRange { shard, shards } => write!(
                f,
                "fixed keyless fallback shard {shard} is outside 0..{shards}"
            ),
            ShardConfigError::MalformedKey { detail } => {
                write!(f, "malformed shard config key: {detail}")
            }
        }
    }
}

impl std::error::Error for ShardConfigError {}

/// Replication factor and write quorum of the tier.
///
/// The owner shard's acknowledgement is always mandatory (single-owner
/// `take` semantics require the owner to hold every acked write); the
/// quorum says how many replica acks — the owner's included — a write
/// needs before the router acknowledges it to the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationConfig {
    /// Distinct shards holding each key (1 = no replication).
    pub replicas: u8,
    /// Acks required before the write is acknowledged (owner included).
    pub write_quorum: u8,
}

impl ReplicationConfig {
    /// No replication: each key lives on its owner shard only.
    #[must_use]
    pub const fn none() -> Self {
        ReplicationConfig {
            replicas: 1,
            write_quorum: 1,
        }
    }

    /// `replicas` copies per key with a majority write quorum
    /// (`replicas / 2 + 1`).
    #[must_use]
    pub const fn mirrored(replicas: u8) -> Self {
        ReplicationConfig {
            replicas,
            write_quorum: replicas / 2 + 1,
        }
    }

    /// Overrides the write quorum (builder style). Validation still
    /// rejects `quorum > replicas` and `quorum == 0`.
    #[must_use]
    pub const fn with_quorum(mut self, quorum: u8) -> Self {
        self.write_quorum = quorum;
        self
    }

    /// Checks the factor/quorum pair in isolation (the R ≤ N check needs
    /// the shard count and lives in [`ShardConfig::validate`]).
    pub fn validate(&self) -> Result<(), ShardConfigError> {
        if self.replicas == 0 {
            return Err(ShardConfigError::ZeroReplicas);
        }
        if self.write_quorum == 0 {
            return Err(ShardConfigError::ZeroQuorum);
        }
        if self.write_quorum > self.replicas {
            return Err(ShardConfigError::QuorumExceedsReplicas {
                quorum: self.write_quorum,
                replicas: self.replicas,
            });
        }
        Ok(())
    }
}

/// Where a tuple (or template) without a usable key field is routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeylessPolicy {
    /// Hash the whole tuple; keyless templates scatter to every shard.
    HashWholeTuple,
    /// Pin everything keyless to one shard.
    Fixed(u8),
}

/// What the router does with a write whose target shard is degraded
/// (its bus breaker is Open and sends fast-fail).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedWritePolicy {
    /// Park the sub-write and re-send when the shard recovers; the
    /// operation stays open until the quorum assembles.
    Queue,
    /// Fail the sub-write immediately; the operation errors if the
    /// quorum becomes unreachable.
    FastFail,
}

/// The full shard-tier configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardConfig {
    /// Number of shards (bus segments + `SpaceServer`s).
    pub shards: u8,
    /// Replication factor and write quorum.
    pub replication: ReplicationConfig,
    /// Tuple field index carrying the shard key.
    pub key_field: usize,
    /// Routing for tuples/templates without that field.
    pub keyless: KeylessPolicy,
    /// Virtual nodes per shard on the hash ring (balance knob).
    pub vnodes: u16,
    /// Degraded-shard write policy.
    pub degraded_writes: DegradedWritePolicy,
}

impl ShardConfig {
    /// A validated configuration with the default routing knobs: shard
    /// key at field 1 (the workload item id in `("item", i)` tuples),
    /// whole-tuple hashing for keyless traffic, 128 vnodes per shard,
    /// and queued degraded writes.
    pub fn new(shards: u8, replication: ReplicationConfig) -> Result<Self, ShardConfigError> {
        let cfg = ShardConfig {
            shards,
            replication,
            key_field: 1,
            keyless: KeylessPolicy::HashWholeTuple,
            vnodes: 128,
            degraded_writes: DegradedWritePolicy::Queue,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Moves the shard key to another tuple field (builder style).
    #[must_use]
    pub const fn with_key_field(mut self, field: usize) -> Self {
        self.key_field = field;
        self
    }

    /// Changes the keyless routing policy (builder style).
    #[must_use]
    pub const fn with_keyless(mut self, policy: KeylessPolicy) -> Self {
        self.keyless = policy;
        self
    }

    /// Changes the vnode count (builder style).
    #[must_use]
    pub const fn with_vnodes(mut self, vnodes: u16) -> Self {
        self.vnodes = vnodes;
        self
    }

    /// Changes the degraded-write policy (builder style).
    #[must_use]
    pub const fn with_degraded_writes(mut self, policy: DegradedWritePolicy) -> Self {
        self.degraded_writes = policy;
        self
    }

    /// Full validation: shard bounds, replication bounds, quorum bounds,
    /// ring and fallback sanity.
    pub fn validate(&self) -> Result<(), ShardConfigError> {
        if self.shards == 0 {
            return Err(ShardConfigError::ZeroShards);
        }
        if self.shards > MAX_SHARDS {
            return Err(ShardConfigError::TooManyShards {
                shards: self.shards,
            });
        }
        self.replication.validate()?;
        if self.replication.replicas > self.shards {
            return Err(ShardConfigError::ReplicasExceedShards {
                replicas: self.replication.replicas,
                shards: self.shards,
            });
        }
        if self.vnodes == 0 {
            return Err(ShardConfigError::ZeroVnodes);
        }
        if let KeylessPolicy::Fixed(shard) = self.keyless {
            if shard >= self.shards {
                return Err(ShardConfigError::FixedShardOutOfRange {
                    shard,
                    shards: self.shards,
                });
            }
        }
        Ok(())
    }

    /// The canonical, sorted `axis=value` rendering of every parameter
    /// that affects partition placement or routing. Campaign key
    /// functions must include this string so the result cache
    /// distinguishes shard configurations (the partition map is a pure
    /// function of it).
    #[must_use]
    pub fn canonical_key(&self) -> String {
        let keyless = match self.keyless {
            KeylessPolicy::HashWholeTuple => "hash".to_owned(),
            KeylessPolicy::Fixed(s) => format!("fixed{s}"),
        };
        let degraded = match self.degraded_writes {
            DegradedWritePolicy::Queue => "queue",
            DegradedWritePolicy::FastFail => "fastfail",
        };
        format!(
            "degraded={degraded},key={},keyless={keyless},quorum={},repl={},shards={},vnodes={}",
            self.key_field,
            self.replication.write_quorum,
            self.replication.replicas,
            self.shards,
            self.vnodes,
        )
    }

    /// Parses a [`canonical_key`](Self::canonical_key) string back into a
    /// validated configuration (the serialization round-trip the config
    /// cache relies on).
    pub fn parse_key(key: &str) -> Result<Self, ShardConfigError> {
        fn field<'a>(key: &'a str, name: &str) -> Result<&'a str, ShardConfigError> {
            key.split(',')
                .find_map(|pair| pair.strip_prefix(name)?.strip_prefix('='))
                .ok_or_else(|| ShardConfigError::MalformedKey {
                    detail: format!("missing `{name}=`"),
                })
        }
        fn num<T: FromStr>(raw: &str, name: &str) -> Result<T, ShardConfigError> {
            raw.parse().map_err(|_| ShardConfigError::MalformedKey {
                detail: format!("`{name}={raw}` is not a number"),
            })
        }
        let keyless = match field(key, "keyless")? {
            "hash" => KeylessPolicy::HashWholeTuple,
            fixed => match fixed.strip_prefix("fixed") {
                Some(raw) => KeylessPolicy::Fixed(num(raw, "keyless")?),
                None => {
                    return Err(ShardConfigError::MalformedKey {
                        detail: format!("unknown keyless policy `{fixed}`"),
                    })
                }
            },
        };
        let degraded = match field(key, "degraded")? {
            "queue" => DegradedWritePolicy::Queue,
            "fastfail" => DegradedWritePolicy::FastFail,
            other => {
                return Err(ShardConfigError::MalformedKey {
                    detail: format!("unknown degraded-write policy `{other}`"),
                })
            }
        };
        let cfg = ShardConfig {
            shards: num(field(key, "shards")?, "shards")?,
            replication: ReplicationConfig {
                replicas: num(field(key, "repl")?, "repl")?,
                write_quorum: num(field(key, "quorum")?, "quorum")?,
            },
            key_field: num(field(key, "key")?, "key")?,
            keyless,
            vnodes: num(field(key, "vnodes")?, "vnodes")?,
            degraded_writes: degraded,
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        let cfg = ShardConfig::new(4, ReplicationConfig::mirrored(2)).expect("valid");
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.replication.replicas, 2);
        assert_eq!(cfg.replication.write_quorum, 2);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn majority_quorums() {
        assert_eq!(ReplicationConfig::mirrored(1).write_quorum, 1);
        assert_eq!(ReplicationConfig::mirrored(2).write_quorum, 2);
        assert_eq!(ReplicationConfig::mirrored(3).write_quorum, 2);
        assert_eq!(ReplicationConfig::mirrored(5).write_quorum, 3);
    }

    #[test]
    fn rejections_carry_typed_evidence() {
        assert_eq!(
            ShardConfig::new(0, ReplicationConfig::none()),
            Err(ShardConfigError::ZeroShards)
        );
        assert_eq!(
            ShardConfig::new(2, ReplicationConfig::mirrored(3)),
            Err(ShardConfigError::ReplicasExceedShards {
                replicas: 3,
                shards: 2
            })
        );
        assert_eq!(
            ShardConfig::new(4, ReplicationConfig::none().with_quorum(2)),
            Err(ShardConfigError::QuorumExceedsReplicas {
                quorum: 2,
                replicas: 1
            })
        );
        assert_eq!(
            ShardConfig::new(4, ReplicationConfig::mirrored(2).with_quorum(0)),
            Err(ShardConfigError::ZeroQuorum)
        );
        assert_eq!(
            ShardConfig::new(
                4,
                ReplicationConfig {
                    replicas: 0,
                    write_quorum: 1
                }
            ),
            Err(ShardConfigError::ZeroReplicas)
        );
        assert_eq!(
            ShardConfig::new(MAX_SHARDS + 1, ReplicationConfig::none()),
            Err(ShardConfigError::TooManyShards {
                shards: MAX_SHARDS + 1
            })
        );
        let bad_vnodes = ShardConfig::new(2, ReplicationConfig::none())
            .expect("valid")
            .with_vnodes(0);
        assert_eq!(bad_vnodes.validate(), Err(ShardConfigError::ZeroVnodes));
        let bad_fixed = ShardConfig::new(2, ReplicationConfig::none())
            .expect("valid")
            .with_keyless(KeylessPolicy::Fixed(2));
        assert_eq!(
            bad_fixed.validate(),
            Err(ShardConfigError::FixedShardOutOfRange {
                shard: 2,
                shards: 2
            })
        );
    }

    #[test]
    fn canonical_key_round_trips() {
        let cfg = ShardConfig::new(6, ReplicationConfig::mirrored(3))
            .expect("valid")
            .with_key_field(2)
            .with_vnodes(64)
            .with_keyless(KeylessPolicy::Fixed(5))
            .with_degraded_writes(DegradedWritePolicy::FastFail);
        let key = cfg.canonical_key();
        assert_eq!(
            key,
            "degraded=fastfail,key=2,keyless=fixed5,quorum=2,repl=3,shards=6,vnodes=64"
        );
        assert_eq!(ShardConfig::parse_key(&key), Ok(cfg));
    }

    #[test]
    fn malformed_keys_are_rejected() {
        assert!(matches!(
            ShardConfig::parse_key("shards=4"),
            Err(ShardConfigError::MalformedKey { .. })
        ));
        assert!(matches!(
            ShardConfig::parse_key(
                "degraded=queue,key=1,keyless=hash,quorum=2,repl=2,shards=x,vnodes=128"
            ),
            Err(ShardConfigError::MalformedKey { .. })
        ));
        // A parseable key still goes through full validation.
        assert_eq!(
            ShardConfig::parse_key(
                "degraded=queue,key=1,keyless=hash,quorum=2,repl=2,shards=1,vnodes=128"
            ),
            Err(ShardConfigError::ReplicasExceedShards {
                replicas: 2,
                shards: 1
            })
        );
    }

    #[test]
    fn errors_render_for_humans() {
        let all = [
            ShardConfigError::ZeroShards,
            ShardConfigError::TooManyShards { shards: 65 },
            ShardConfigError::ZeroReplicas,
            ShardConfigError::ReplicasExceedShards {
                replicas: 3,
                shards: 2,
            },
            ShardConfigError::ZeroQuorum,
            ShardConfigError::QuorumExceedsReplicas {
                quorum: 3,
                replicas: 2,
            },
            ShardConfigError::ZeroVnodes,
            ShardConfigError::FixedShardOutOfRange {
                shard: 4,
                shards: 4,
            },
            ShardConfigError::MalformedKey {
                detail: "missing `shards=`".into(),
            },
        ];
        for err in all {
            assert!(!err.to_string().is_empty());
        }
    }
}
