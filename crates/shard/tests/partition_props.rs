//! Property tests on the partition map: placement determinism, replica
//! well-formedness, canonical-key serialization round-trips, ring
//! balance over a fixed key population, and the assignment golden that
//! guards cached campaign results against silent placement drift.

use proptest::prelude::*;
use tsbus_shard::{
    hash_tuple, hash_value, DegradedWritePolicy, KeylessPolicy, PartitionMap, ReplicationConfig,
    ShardConfig, MAX_SHARDS,
};
use tsbus_tuplespace::{Tuple, Value};

fn value_strategy() -> BoxedStrategy<Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        "[a-z]{0,12}".prop_map(Value::from),
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::Bytes),
        // Finite floats only: NaN hashes fine (bit pattern) but breaks
        // the equality checks the properties themselves make.
        (-1_000_000_000i64..1_000_000_000).prop_map(|i| Value::Float(i as f64 / 16.0)),
    ]
}

fn config_strategy() -> BoxedStrategy<ShardConfig> {
    (
        1..=MAX_SHARDS,
        1u8..=4,
        1u8..=4,
        0usize..4,
        1u16..=256,
        any::<bool>(),
    )
        .prop_map(|(shards, replicas, quorum, key_field, vnodes, queue)| {
            // Fold the raw draws into the validated envelope instead of
            // filtering: R <= N, 1 <= W <= R.
            let replicas = replicas.min(shards);
            let quorum = 1 + (quorum - 1) % replicas;
            let mut cfg = ShardConfig::new(
                shards,
                ReplicationConfig::mirrored(replicas).with_quorum(quorum),
            )
            .expect("shards and replicas stay in range")
            .with_key_field(key_field)
            .with_vnodes(vnodes)
            .with_degraded_writes(if queue {
                DegradedWritePolicy::Queue
            } else {
                DegradedWritePolicy::FastFail
            });
            if shards > 1 && !queue {
                cfg = cfg.with_keyless(KeylessPolicy::Fixed(shards - 1));
            }
            cfg
        })
}

proptest! {
    /// Two independently built maps of the same config agree on every
    /// owner — placement is a pure function of the configuration.
    #[test]
    fn placement_is_deterministic(cfg in config_strategy(), keys in proptest::collection::vec(value_strategy(), 1..64)) {
        let a = PartitionMap::new(&cfg).expect("valid");
        let b = PartitionMap::new(&cfg).expect("valid");
        for key in &keys {
            prop_assert_eq!(a.owner_of_value(key), b.owner_of_value(key));
        }
    }

    /// Every owner is a real shard and every replica set starts at the
    /// owner, has exactly R members, and never repeats a shard.
    #[test]
    fn replica_sets_are_well_formed(cfg in config_strategy(), key in value_strategy()) {
        let map = PartitionMap::new(&cfg).expect("valid");
        let owner = map.owner_of_value(&key);
        prop_assert!(owner < cfg.shards);
        let set = map.replica_set(owner);
        prop_assert_eq!(set.len(), usize::from(cfg.replication.replicas));
        prop_assert_eq!(set[0], owner);
        let mut sorted = set.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), set.len(), "replica shards must be distinct");
        prop_assert!(set.iter().all(|s| *s < cfg.shards));
    }

    /// The canonical key round-trips through the parser for every valid
    /// configuration — the property the campaign cache keys rely on.
    #[test]
    fn canonical_key_round_trips(cfg in config_strategy()) {
        let key = cfg.canonical_key();
        let parsed = ShardConfig::parse_key(&key).expect("canonical keys parse");
        prop_assert_eq!(parsed, cfg);
        prop_assert_eq!(parsed.canonical_key(), key);
    }

    /// Value hashing is injective in practice over generated pairs: a
    /// collision would silently co-locate distinct keys forever.
    #[test]
    fn distinct_values_hash_apart(a in value_strategy(), b in value_strategy()) {
        prop_assume!(a != b);
        prop_assert_ne!(hash_value(&a), hash_value(&b));
    }

    /// Whole-tuple hashing distinguishes arity (the keyless fallback
    /// must not alias `(x)` with `(x, x)`).
    #[test]
    fn tuple_hash_separates_arity(v in value_strategy()) {
        let one = Tuple::new(vec![v.clone()]);
        let two = Tuple::new(vec![v.clone(), v]);
        prop_assert_ne!(hash_tuple(&one), hash_tuple(&two));
    }
}

/// Ring balance over a fixed population: with the default 128 vnodes,
/// every shard owns a sane share of 8192 sequential integer keys. The
/// bounds are deliberately loose (hash-ring imbalance is real); what
/// they catch is collapse — the failure mode where weak diffusion lands
/// every key on one shard and "sharding" silently stops sharding.
#[test]
fn integer_keys_balance_across_shards() {
    const KEYS: i64 = 8192;
    for shards in [2u8, 3, 4, 8] {
        let cfg = ShardConfig::new(shards, ReplicationConfig::none()).expect("valid");
        let map = PartitionMap::new(&cfg).expect("valid");
        let mut counts = vec![0u64; usize::from(shards)];
        for key in 0..KEYS {
            counts[usize::from(map.owner_of_value(&Value::Int(key)))] += 1;
        }
        let mean = KEYS as f64 / f64::from(shards);
        for (shard, count) in counts.iter().enumerate() {
            let share = *count as f64 / mean;
            assert!(
                (0.5..=1.5).contains(&share),
                "shard {shard} of {shards} owns {count} of {KEYS} keys \
                 ({share:.2}x the fair share); distribution: {counts:?}"
            );
        }
    }
}

/// The placement golden: the folded owner assignment of keys 0..1024
/// under the default 4-shard config. A change here means every cached
/// campaign point keyed on this configuration silently describes a
/// different cluster — bump the golden only alongside a deliberate
/// partition-scheme change (and flush campaign caches).
#[test]
fn assignment_hash_golden() {
    let cfg = ShardConfig::new(4, ReplicationConfig::mirrored(2)).expect("valid");
    let map = PartitionMap::new(&cfg).expect("valid");
    assert_eq!(
        map.assignment_hash(1024),
        0x731A_D5C1_E223_FB4F,
        "partition placement changed: this invalidates cached campaign results"
    );
}
