//! The hierarchical metrics registry.
//!
//! A [`Registry`] maps `/`-scoped paths to typed instruments. Registration
//! happens once, at component construction, and returns a small index-typed
//! handle; every hot-path update is a bounds-checked vector index — no
//! hashing, no allocation. Paths are only walked again when a
//! [`Snapshot`] is taken.

use std::collections::BTreeMap;

use tsbus_des::stats::{BusyTime, Counter, Histogram, Summary, TimeWeighted, Utilization};
use tsbus_des::{SimDuration, SimTime};

use crate::snapshot::{MetricValue, Snapshot};

macro_rules! handles {
    ($($(#[$meta:meta])* $name:ident),+ $(,)?) => {
        $(
            $(#[$meta])*
            #[derive(Debug, Clone, Copy, PartialEq, Eq)]
            pub struct $name(pub(crate) usize);
        )+
    };
}

handles! {
    /// Handle to a registered [`Counter`].
    CounterId,
    /// Handle to a registered gauge (a plain `f64` level).
    GaugeId,
    /// Handle to a registered [`Summary`].
    SummaryId,
    /// Handle to a registered [`Histogram`].
    HistogramId,
    /// Handle to a registered [`TimeWeighted`] signal.
    TimeWeightedId,
    /// Handle to a registered [`BusyTime`] accumulator.
    BusyId,
    /// Handle to a registered [`Utilization`] tracker.
    UtilizationId,
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(f64),
    Summary(Summary),
    Histogram(Histogram),
    TimeWeighted(TimeWeighted),
    Busy(BusyTime),
    Utilization(Utilization),
}

#[derive(Debug, Clone)]
struct Slot {
    path: String,
    instrument: Instrument,
}

/// A set of named instruments owned by one component (or one layer).
///
/// Paths are `/`-separated, lower-case segments (`retry/control`,
/// `lane/0/busy`). The component prefix (`bus/0`, `space`) is *not* part of
/// the registered path — it is applied at harvest time via
/// [`Snapshot::prefixed`](crate::Snapshot::prefixed), so a component never
/// needs to know where it sits in the system.
///
/// # Examples
///
/// ```
/// use tsbus_obs::Registry;
/// use tsbus_des::SimTime;
///
/// let mut reg = Registry::new();
/// let polls = reg.counter("poll/total");
/// reg.add(polls, 3);
/// assert_eq!(reg.count(polls), 3);
/// assert_eq!(reg.snapshot(SimTime::ZERO).count("poll/total"), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    slots: Vec<Slot>,
    index: BTreeMap<String, usize>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered instruments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn register(&mut self, path: &str, instrument: Instrument) -> usize {
        assert!(
            !path.is_empty() && !path.starts_with('/') && !path.ends_with('/'),
            "instrument path must be non-empty without leading/trailing '/': {path:?}"
        );
        assert!(
            path.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "/_-".contains(c)),
            "instrument path must be lower-case [a-z0-9_/-]: {path:?}"
        );
        let idx = self.slots.len();
        assert!(
            self.index.insert(path.to_owned(), idx).is_none(),
            "duplicate instrument path {path:?}"
        );
        self.slots.push(Slot {
            path: path.to_owned(),
            instrument,
        });
        idx
    }

    /// Registers a monotonic event counter.
    ///
    /// # Panics
    ///
    /// Panics if `path` is malformed or already registered (all
    /// registration methods do).
    pub fn counter(&mut self, path: &str) -> CounterId {
        CounterId(self.register(path, Instrument::Counter(Counter::new())))
    }

    /// Registers a gauge: a plain instantaneous `f64` level.
    pub fn gauge(&mut self, path: &str) -> GaugeId {
        GaugeId(self.register(path, Instrument::Gauge(0.0)))
    }

    /// Registers a running [`Summary`] of samples.
    pub fn summary(&mut self, path: &str) -> SummaryId {
        SummaryId(self.register(path, Instrument::Summary(Summary::new())))
    }

    /// Registers a fixed-width-bin [`Histogram`] over `[low, high)`.
    pub fn histogram(&mut self, path: &str, low: f64, high: f64, bins: usize) -> HistogramId {
        HistogramId(self.register(path, Instrument::Histogram(Histogram::new(low, high, bins))))
    }

    /// Registers a [`TimeWeighted`] piecewise-constant signal starting at
    /// `start` with value `initial`.
    pub fn time_weighted(&mut self, path: &str, start: SimTime, initial: f64) -> TimeWeightedId {
        TimeWeightedId(self.register(
            path,
            Instrument::TimeWeighted(TimeWeighted::new(start, initial)),
        ))
    }

    /// Registers a [`BusyTime`] accumulator.
    pub fn busy_time(&mut self, path: &str) -> BusyId {
        BusyId(self.register(path, Instrument::Busy(BusyTime::new())))
    }

    /// Registers a [`Utilization`] (busy-fraction) tracker observing from
    /// `start`.
    pub fn utilization(&mut self, path: &str, start: SimTime) -> UtilizationId {
        UtilizationId(self.register(path, Instrument::Utilization(Utilization::new(start))))
    }

    /// Adds one to a counter.
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, id: CounterId, n: u64) {
        match &mut self.slots[id.0].instrument {
            Instrument::Counter(c) => c.add(n),
            other => unreachable!("handle type guarantees a counter, found {other:?}"),
        }
    }

    /// Subtracts `n` from a counter, saturating at zero — the compensation
    /// hook for undo paths (e.g. a transaction abort reinstating an entry
    /// that was already counted as taken).
    pub fn sub(&mut self, id: CounterId, n: u64) {
        match &mut self.slots[id.0].instrument {
            Instrument::Counter(c) => c.subtract(n),
            other => unreachable!("handle type guarantees a counter, found {other:?}"),
        }
    }

    /// The current value of a counter.
    #[must_use]
    pub fn count(&self, id: CounterId) -> u64 {
        match &self.slots[id.0].instrument {
            Instrument::Counter(c) => c.count(),
            other => unreachable!("handle type guarantees a counter, found {other:?}"),
        }
    }

    /// Sets a gauge's level.
    pub fn set_gauge(&mut self, id: GaugeId, value: f64) {
        match &mut self.slots[id.0].instrument {
            Instrument::Gauge(g) => *g = value,
            other => unreachable!("handle type guarantees a gauge, found {other:?}"),
        }
    }

    /// The current level of a gauge.
    #[must_use]
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        match &self.slots[id.0].instrument {
            Instrument::Gauge(g) => *g,
            other => unreachable!("handle type guarantees a gauge, found {other:?}"),
        }
    }

    /// Records one sample into a summary.
    pub fn observe(&mut self, id: SummaryId, value: f64) {
        match &mut self.slots[id.0].instrument {
            Instrument::Summary(s) => s.record(value),
            other => unreachable!("handle type guarantees a summary, found {other:?}"),
        }
    }

    /// The current state of a summary.
    #[must_use]
    pub fn summary_value(&self, id: SummaryId) -> Summary {
        match &self.slots[id.0].instrument {
            Instrument::Summary(s) => *s,
            other => unreachable!("handle type guarantees a summary, found {other:?}"),
        }
    }

    /// Records one sample into a histogram.
    pub fn record(&mut self, id: HistogramId, value: f64) {
        match &mut self.slots[id.0].instrument {
            Instrument::Histogram(h) => h.record(value),
            other => unreachable!("handle type guarantees a histogram, found {other:?}"),
        }
    }

    /// The current state of a histogram.
    #[must_use]
    pub fn histogram_value(&self, id: HistogramId) -> &Histogram {
        match &self.slots[id.0].instrument {
            Instrument::Histogram(h) => h,
            other => unreachable!("handle type guarantees a histogram, found {other:?}"),
        }
    }

    /// Records a change of a time-weighted signal to `value` at `now`.
    pub fn set_level(&mut self, id: TimeWeightedId, now: SimTime, value: f64) {
        match &mut self.slots[id.0].instrument {
            Instrument::TimeWeighted(tw) => tw.set(now, value),
            other => unreachable!("handle type guarantees a time-weighted signal, found {other:?}"),
        }
    }

    /// Adds `delta` to a time-weighted signal at `now`.
    pub fn adjust_level(&mut self, id: TimeWeightedId, now: SimTime, delta: f64) {
        match &mut self.slots[id.0].instrument {
            Instrument::TimeWeighted(tw) => tw.adjust(now, delta),
            other => unreachable!("handle type guarantees a time-weighted signal, found {other:?}"),
        }
    }

    /// Accumulates one busy span.
    pub fn add_busy(&mut self, id: BusyId, span: SimDuration) {
        match &mut self.slots[id.0].instrument {
            Instrument::Busy(b) => b.add(span),
            other => {
                unreachable!("handle type guarantees a busy-time accumulator, found {other:?}")
            }
        }
    }

    /// Total accumulated busy time.
    #[must_use]
    pub fn busy_total(&self, id: BusyId) -> SimDuration {
        match &self.slots[id.0].instrument {
            Instrument::Busy(b) => b.total(),
            other => {
                unreachable!("handle type guarantees a busy-time accumulator, found {other:?}")
            }
        }
    }

    /// Marks a utilization-tracked resource busy at `now`.
    pub fn set_busy(&mut self, id: UtilizationId, now: SimTime) {
        match &mut self.slots[id.0].instrument {
            Instrument::Utilization(u) => u.set_busy(now),
            other => unreachable!("handle type guarantees a utilization tracker, found {other:?}"),
        }
    }

    /// Marks a utilization-tracked resource idle at `now`.
    pub fn set_idle(&mut self, id: UtilizationId, now: SimTime) {
        match &mut self.slots[id.0].instrument {
            Instrument::Utilization(u) => u.set_idle(now),
            other => unreachable!("handle type guarantees a utilization tracker, found {other:?}"),
        }
    }

    /// Busy fraction of a utilization tracker in `[start, now]`.
    #[must_use]
    pub fn fraction_busy(&self, id: UtilizationId, now: SimTime) -> f64 {
        match &self.slots[id.0].instrument {
            Instrument::Utilization(u) => u.fraction_busy(now),
            other => unreachable!("handle type guarantees a utilization tracker, found {other:?}"),
        }
    }

    /// Captures every instrument into a path-sorted, deterministic
    /// [`Snapshot`]. Time-parameterized instruments (time-weighted signals,
    /// utilization) are evaluated at `now`.
    #[must_use]
    pub fn snapshot(&self, now: SimTime) -> Snapshot {
        let rows = self
            .slots
            .iter()
            .map(|slot| {
                let value = match &slot.instrument {
                    Instrument::Counter(c) => MetricValue::Count(c.count()),
                    Instrument::Gauge(g) => MetricValue::Gauge(*g),
                    Instrument::Summary(s) => MetricValue::Summary(*s),
                    Instrument::Histogram(h) => MetricValue::Histogram(h.clone()),
                    Instrument::TimeWeighted(tw) => MetricValue::Gauge(tw.time_average(now)),
                    Instrument::Busy(b) => MetricValue::Duration(b.total()),
                    Instrument::Utilization(u) => MetricValue::Gauge(u.fraction_busy(now)),
                };
                (slot.path.clone(), value)
            })
            .collect();
        Snapshot::from_rows(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let mut reg = Registry::new();
        let c = reg.counter("a/count");
        let g = reg.gauge("a/level");
        reg.inc(c);
        reg.add(c, 2);
        reg.sub(c, 1);
        reg.set_gauge(g, 0.75);
        assert_eq!(reg.count(c), 2);
        assert!((reg.gauge_value(g) - 0.75).abs() < f64::EPSILON);
    }

    #[test]
    fn snapshot_evaluates_time_instruments_at_now() {
        let mut reg = Registry::new();
        let u = reg.utilization("util", SimTime::ZERO);
        let b = reg.busy_time("busy");
        reg.set_busy(u, SimTime::from_secs(1));
        reg.set_idle(u, SimTime::from_secs(2));
        reg.add_busy(b, SimDuration::from_secs(3));
        let snap = reg.snapshot(SimTime::from_secs(4));
        assert!((snap.gauge("util") - 0.25).abs() < 1e-12);
        assert_eq!(snap.duration("busy"), SimDuration::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "duplicate instrument path")]
    fn duplicate_paths_rejected() {
        let mut reg = Registry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    #[should_panic(expected = "lower-case")]
    fn malformed_paths_rejected() {
        let mut reg = Registry::new();
        let _ = reg.counter("Bad Path");
    }

    #[test]
    fn summaries_and_histograms_record() {
        let mut reg = Registry::new();
        let s = reg.summary("lat");
        let h = reg.histogram("dist", 0.0, 10.0, 10);
        reg.observe(s, 1.0);
        reg.observe(s, 3.0);
        reg.record(h, 5.0);
        assert_eq!(reg.summary_value(s).len(), 2);
        assert!((reg.summary_value(s).mean() - 2.0).abs() < f64::EPSILON);
        assert_eq!(reg.histogram_value(h).count(), 1);
    }
}
