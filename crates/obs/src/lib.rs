//! # tsbus-obs — the observability spine
//!
//! Every layer of the simulation (TpWIRE bus, netsim links, tuplespace,
//! middleware client/server, fault injection) used to keep its own
//! hand-rolled stats struct and copy it field-by-field into the scenario
//! harvest. This crate replaces that with one spine:
//!
//! * [`Registry`] — a hierarchical, allocation-light metrics registry.
//!   Components register `/`-scoped instruments once (`txn/total`,
//!   `retry/control`, `lane/0/busy`), get back index-typed handles, and
//!   update them on the hot path with plain vector indexing — no hashing,
//!   no string formatting.
//! * [`Snapshot`] — a deterministic, path-sorted capture of a registry.
//!   Snapshots merge (with a per-component prefix), diff, and flatten to
//!   scalar rows, so the same bytes come out regardless of thread count or
//!   harvest order.
//! * [`Tracer`] / [`TraceEvent`] — a bounded (or unbounded) typed event
//!   ring replacing stringly-typed trace records. The cross-layer
//!   [`TraceEvent`] taxonomy covers frames, retries, faults, tuple
//!   operations, dedup decisions and lease renewals; layers with their own
//!   payload types (e.g. the tuplespace audit) instantiate [`Tracer`] with
//!   their own event type.
//!
//! Instruments reuse the measurement primitives of
//! [`tsbus_des::stats`] — [`Counter`](tsbus_des::stats::Counter),
//! [`Summary`](tsbus_des::stats::Summary),
//! [`Histogram`](tsbus_des::stats::Histogram),
//! [`TimeWeighted`](tsbus_des::stats::TimeWeighted),
//! [`BusyTime`](tsbus_des::stats::BusyTime) and
//! [`Utilization`](tsbus_des::stats::Utilization) — so a registry row
//! carries exactly the semantics the layer recorded.
//!
//! ## Example
//!
//! ```
//! use tsbus_obs::Registry;
//! use tsbus_des::SimTime;
//!
//! let mut reg = Registry::new();
//! let retries = reg.counter("retry/total");
//! let latency = reg.summary("latency");
//! reg.inc(retries);
//! reg.observe(latency, 2.5);
//! let snap = reg.snapshot(SimTime::ZERO).prefixed("bus/0");
//! assert_eq!(snap.count("bus/0/retry/total"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod registry;
pub mod snapshot;
pub mod trace;

pub use registry::{
    BusyId, CounterId, GaugeId, HistogramId, Registry, SummaryId, TimeWeightedId, UtilizationId,
};
pub use snapshot::{FlatValue, MetricValue, Snapshot};
pub use trace::{DedupDecision, LinkEffect, RetryClass, TraceEvent, Tracer, TupleOpKind};
