//! Deterministic, path-sorted captures of a [`Registry`](crate::Registry).
//!
//! A [`Snapshot`] is the only way metrics leave a component: the scenario
//! harness takes one snapshot per component, prefixes each with the
//! component's place in the system (`bus/0`, `space`, …), and merges them
//! into the single record every figure and campaign exports from. Rows are
//! sorted by path and values flatten through a fixed rule set, so the same
//! simulation produces the same bytes regardless of thread count or
//! harvest order.

use std::fmt;

use tsbus_des::stats::{Histogram, Summary};
use tsbus_des::SimDuration;

/// The captured value of one instrument.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonic event count.
    Count(u64),
    /// An instantaneous or time-averaged level.
    Gauge(f64),
    /// An accumulated busy span.
    Duration(SimDuration),
    /// A full sample summary (n / mean / min / max / variance).
    Summary(Summary),
    /// A full binned distribution.
    Histogram(Histogram),
}

/// One scalar produced by [`Snapshot::flatten`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlatValue {
    /// An exact integer scalar.
    U64(u64),
    /// A floating-point scalar.
    F64(f64),
}

impl fmt::Display for FlatValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlatValue::U64(v) => write!(f, "{v}"),
            FlatValue::F64(v) => write!(f, "{v}"),
        }
    }
}

/// A path-sorted capture of metric values.
///
/// # Examples
///
/// ```
/// use tsbus_obs::Registry;
/// use tsbus_des::SimTime;
///
/// let mut bus = Registry::new();
/// let retries = bus.counter("retry/total");
/// bus.add(retries, 2);
/// let mut space = Registry::new();
/// let writes = space.counter("writes");
/// space.inc(writes);
///
/// let snap = bus
///     .snapshot(SimTime::ZERO)
///     .prefixed("bus/0")
///     .merge(space.snapshot(SimTime::ZERO).prefixed("space"));
/// assert_eq!(snap.count("bus/0/retry/total"), 2);
/// assert_eq!(snap.count("space/writes"), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    rows: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// Builds a snapshot from rows, sorting by path.
    ///
    /// # Panics
    ///
    /// Panics if two rows share a path.
    #[must_use]
    pub fn from_rows(mut rows: Vec<(String, MetricValue)>) -> Self {
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        for pair in rows.windows(2) {
            assert!(
                pair[0].0 != pair[1].0,
                "duplicate snapshot path {:?}",
                pair[0].0
            );
        }
        Snapshot { rows }
    }

    /// The rows, sorted by path.
    #[must_use]
    pub fn rows(&self) -> &[(String, MetricValue)] {
        &self.rows
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the snapshot holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Looks a row up by exact path.
    #[must_use]
    pub fn get(&self, path: &str) -> Option<&MetricValue> {
        self.rows
            .binary_search_by(|(p, _)| p.as_str().cmp(path))
            .ok()
            .map(|i| &self.rows[i].1)
    }

    /// Reads a [`MetricValue::Count`] row.
    ///
    /// # Panics
    ///
    /// Panics if the path is absent or not a count (the typed getters all
    /// do — a missing metric in a harvest is a wiring bug, not data).
    #[must_use]
    pub fn count(&self, path: &str) -> u64 {
        match self.get(path) {
            Some(MetricValue::Count(v)) => *v,
            other => panic!("snapshot row {path:?} is not a count: {other:?}"),
        }
    }

    /// Reads a [`MetricValue::Gauge`] row.
    #[must_use]
    pub fn gauge(&self, path: &str) -> f64 {
        match self.get(path) {
            Some(MetricValue::Gauge(v)) => *v,
            other => panic!("snapshot row {path:?} is not a gauge: {other:?}"),
        }
    }

    /// Reads a [`MetricValue::Duration`] row.
    #[must_use]
    pub fn duration(&self, path: &str) -> SimDuration {
        match self.get(path) {
            Some(MetricValue::Duration(v)) => *v,
            other => panic!("snapshot row {path:?} is not a duration: {other:?}"),
        }
    }

    /// Reads a [`MetricValue::Summary`] row.
    #[must_use]
    pub fn summary(&self, path: &str) -> Summary {
        match self.get(path) {
            Some(MetricValue::Summary(v)) => *v,
            other => panic!("snapshot row {path:?} is not a summary: {other:?}"),
        }
    }

    /// Reads a [`MetricValue::Histogram`] row.
    #[must_use]
    pub fn histogram(&self, path: &str) -> &Histogram {
        match self.get(path) {
            Some(MetricValue::Histogram(v)) => v,
            other => panic!("snapshot row {path:?} is not a histogram: {other:?}"),
        }
    }

    /// Returns the snapshot with `prefix/` prepended to every path — how a
    /// harvest places one component's registry into the system-wide
    /// namespace.
    #[must_use]
    pub fn prefixed(self, prefix: &str) -> Snapshot {
        Snapshot {
            rows: self
                .rows
                .into_iter()
                .map(|(path, value)| (format!("{prefix}/{path}"), value))
                .collect(),
        }
    }

    /// Merges two snapshots into one.
    ///
    /// # Panics
    ///
    /// Panics if any path appears in both — merged snapshots must come
    /// from disjoint (prefixed) namespaces, otherwise two layers would be
    /// counting into the same row.
    #[must_use]
    pub fn merge(self, other: Snapshot) -> Snapshot {
        let mut rows = self.rows;
        rows.extend(other.rows);
        Snapshot::from_rows(rows)
    }

    /// The change from `earlier` to `self`: counts and durations subtract
    /// (saturating), while gauges, summaries and histograms keep this
    /// snapshot's value (they are levels or full distributions, not
    /// deltas). Paths absent from `earlier` keep this snapshot's value.
    #[must_use]
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let rows = self
            .rows
            .iter()
            .map(|(path, value)| {
                let value = match (value, earlier.get(path)) {
                    (MetricValue::Count(now), Some(MetricValue::Count(then))) => {
                        MetricValue::Count(now.saturating_sub(*then))
                    }
                    (MetricValue::Duration(now), Some(MetricValue::Duration(then))) => {
                        MetricValue::Duration(now.saturating_sub(*then))
                    }
                    (value, _) => value.clone(),
                };
                (path.clone(), value)
            })
            .collect();
        Snapshot::from_rows(rows)
    }

    /// Flattens every row to scalar entries, in path order:
    ///
    /// * counts → one `U64` at the row's path;
    /// * gauges → one `F64`;
    /// * durations → one `U64` of nanoseconds at `path/ns`;
    /// * summaries → `path/n`, `path/mean`, `path/min`, `path/max`
    ///   (`0` when empty);
    /// * histograms → `path/count`, `path/underflow`, `path/overflow`,
    ///   `path/p50`, `path/p95` (quantiles `0` when empty).
    ///
    /// The flattening is the contract the `tsbus-lab` bridge and the
    /// golden snapshot files rely on: same simulation, same scalars, same
    /// order.
    #[must_use]
    pub fn flatten(&self) -> Vec<(String, FlatValue)> {
        let mut out = Vec::with_capacity(self.rows.len());
        for (path, value) in &self.rows {
            match value {
                MetricValue::Count(v) => out.push((path.clone(), FlatValue::U64(*v))),
                MetricValue::Gauge(v) => out.push((path.clone(), FlatValue::F64(*v))),
                MetricValue::Duration(d) => {
                    out.push((format!("{path}/ns"), FlatValue::U64(d.as_nanos())));
                }
                MetricValue::Summary(s) => {
                    out.push((format!("{path}/n"), FlatValue::U64(s.len())));
                    out.push((format!("{path}/mean"), FlatValue::F64(s.mean())));
                    out.push((
                        format!("{path}/min"),
                        FlatValue::F64(s.min().unwrap_or(0.0)),
                    ));
                    out.push((
                        format!("{path}/max"),
                        FlatValue::F64(s.max().unwrap_or(0.0)),
                    ));
                }
                MetricValue::Histogram(h) => {
                    out.push((format!("{path}/count"), FlatValue::U64(h.count())));
                    out.push((format!("{path}/underflow"), FlatValue::U64(h.underflow())));
                    out.push((format!("{path}/overflow"), FlatValue::U64(h.overflow())));
                    out.push((
                        format!("{path}/p50"),
                        FlatValue::F64(h.quantile(0.5).unwrap_or(0.0)),
                    ));
                    out.push((
                        format!("{path}/p95"),
                        FlatValue::F64(h.quantile(0.95).unwrap_or(0.0)),
                    ));
                }
            }
        }
        out
    }

    /// Renders the flattened rows as `path value` lines — the byte-stable
    /// text form golden files compare.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (path, value) in self.flatten() {
            out.push_str(&path);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;
    use tsbus_des::SimTime;

    fn sample() -> Snapshot {
        let mut reg = Registry::new();
        let c = reg.counter("retries");
        let g = reg.gauge("level");
        let s = reg.summary("lat");
        let b = reg.busy_time("busy");
        reg.add(c, 4);
        reg.set_gauge(g, 0.5);
        reg.observe(s, 1.0);
        reg.observe(s, 2.0);
        reg.add_busy(b, SimDuration::from_micros(7));
        reg.snapshot(SimTime::ZERO)
    }

    #[test]
    fn rows_are_sorted_and_queryable() {
        let snap = sample();
        let paths: Vec<&str> = snap.rows().iter().map(|(p, _)| p.as_str()).collect();
        let mut sorted = paths.clone();
        sorted.sort_unstable();
        assert_eq!(paths, sorted);
        assert_eq!(snap.count("retries"), 4);
        assert!((snap.gauge("level") - 0.5).abs() < f64::EPSILON);
        assert_eq!(snap.summary("lat").len(), 2);
        assert_eq!(snap.duration("busy"), SimDuration::from_micros(7));
        assert!(snap.get("absent").is_none());
    }

    #[test]
    fn prefix_and_merge_compose() {
        let merged = sample().prefixed("a").merge(sample().prefixed("b"));
        assert_eq!(merged.count("a/retries"), 4);
        assert_eq!(merged.count("b/retries"), 4);
        assert_eq!(merged.len(), 2 * sample().len());
    }

    #[test]
    #[should_panic(expected = "duplicate snapshot path")]
    fn merge_rejects_overlapping_paths() {
        let _ = sample().merge(sample());
    }

    #[test]
    fn diff_subtracts_counts_and_keeps_levels() {
        let earlier = sample();
        let mut reg = Registry::new();
        let c = reg.counter("retries");
        let g = reg.gauge("level");
        reg.add(c, 10);
        reg.set_gauge(g, 0.9);
        let later = reg.snapshot(SimTime::ZERO);
        let delta = later.diff(&earlier);
        assert_eq!(delta.count("retries"), 6);
        assert!((delta.gauge("level") - 0.9).abs() < f64::EPSILON);
    }

    #[test]
    fn flatten_and_text_are_deterministic() {
        let a = sample();
        let b = sample();
        assert_eq!(a.flatten(), b.flatten());
        assert_eq!(a.to_text(), b.to_text());
        let text = a.to_text();
        assert!(text.contains("retries 4\n"));
        assert!(text.contains("lat/n 2\n"));
        assert!(text.contains("lat/mean 1.5\n"));
        assert!(text.contains("busy/ns 7000\n"));
    }
}
