//! Typed trace events and the bounded ring that collects them.
//!
//! [`Tracer`] replaces the stringly-typed per-component records that used
//! to go through `tsbus_des::trace::TraceLog` (which remains the kernel's
//! own scheduling trace). A tracer is generic over its event type: the
//! cross-layer [`TraceEvent`] taxonomy covers bus, middleware and link
//! activity, while layers with richer payloads (the tuplespace audit, for
//! one) instantiate `Tracer` with their own event type.

use std::collections::VecDeque;

use tsbus_des::SimTime;
use tsbus_faults::{BreakerState, FaultKind, FrameClass};

/// Which protocol class a bus frame (and hence a retry) belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryClass {
    /// Selection, pointer, system-register and other command frames.
    Control,
    /// Stream-read data frames.
    StreamRead,
    /// Stream-write data frames.
    StreamWrite,
}

impl From<FrameClass> for RetryClass {
    fn from(class: FrameClass) -> RetryClass {
        match class {
            FrameClass::Control => RetryClass::Control,
            FrameClass::StreamRead => RetryClass::StreamRead,
            FrameClass::StreamWrite => RetryClass::StreamWrite,
        }
    }
}

/// What the server's duplicate-suppression layer decided about a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupDecision {
    /// A completed request arrived again; the cached reply was replayed.
    Replay,
    /// A request arrived while its first copy was still being served.
    InflightDrop,
    /// A request arrived after its reply had been acknowledged.
    AckedDrop,
}

/// A tuplespace operation, as seen by the client/server middleware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TupleOpKind {
    /// A tuple was written.
    Write,
    /// A tuple was read (copied, not removed).
    Read,
    /// A tuple was taken (removed).
    Take,
    /// A lease expired and the entry was reaped.
    Expire,
}

/// A fault effect applied by a point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkEffect {
    /// The packet was destroyed on the wire.
    Loss,
    /// A second copy of the packet was delivered.
    Duplicate,
    /// The packet was held back and overtaken.
    Reorder,
    /// The packet was discarded by the drop-tail queue.
    QueueDrop,
}

/// One structured trace event, spanning every simulation layer.
///
/// Variants carry only primitive fields, so events are `Copy` and a
/// tracer ring never allocates per event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A frame-level bus transaction completed.
    Frame {
        /// Completion instant.
        at: SimTime,
        /// Addressed node.
        node: u8,
        /// Protocol class of the frame.
        class: RetryClass,
        /// Whether the transaction succeeded (vs. entered retry/failure).
        ok: bool,
    },
    /// The bus master scheduled a retry.
    Retry {
        /// Retry instant.
        at: SimTime,
        /// Addressed node.
        node: u8,
        /// Protocol class being retried.
        class: RetryClass,
    },
    /// The retry policy backed off before reissuing.
    Backoff {
        /// Backoff start instant.
        at: SimTime,
        /// Backoff length in bit periods.
        bits: u64,
    },
    /// The master gave up on a transaction.
    TxnFailed {
        /// Failure instant.
        at: SimTime,
        /// Addressed node.
        node: u8,
    },
    /// An injected fault command was applied.
    Fault {
        /// Application instant.
        at: SimTime,
        /// What was injected.
        kind: FaultKind,
    },
    /// A notification could not be delivered (no attachment).
    DeliveryDropped {
        /// Drop instant.
        at: SimTime,
        /// Target node.
        node: u8,
    },
    /// A link applied a fault effect to a packet.
    Link {
        /// Effect instant.
        at: SimTime,
        /// What happened to the packet.
        effect: LinkEffect,
        /// The packet's sequence number.
        seq: u64,
    },
    /// A tuplespace operation was served.
    TupleOp {
        /// Service instant.
        at: SimTime,
        /// Which operation.
        op: TupleOpKind,
        /// Whether a matching tuple was found (writes are always `true`).
        hit: bool,
    },
    /// The server's exactly-once layer made a dedup decision.
    Dedup {
        /// Decision instant.
        at: SimTime,
        /// What was decided.
        decision: DedupDecision,
    },
    /// A lease-renewal batch was processed.
    Lease {
        /// Processing instant.
        at: SimTime,
        /// Entries successfully renewed.
        renewed: u64,
        /// Renewal targets that no longer existed.
        missed: u64,
    },
    /// A client ran its reply-loss recovery probe.
    Recovery {
        /// Probe instant.
        at: SimTime,
        /// Whether the probe resolved the in-doubt operation.
        resolved: bool,
    },
    /// A supervised slave's circuit breaker changed state.
    BreakerTransition {
        /// Transition instant.
        at: SimTime,
        /// Supervised node.
        node: u8,
        /// State left.
        from: BreakerState,
        /// State entered.
        to: BreakerState,
    },
    /// The master issued a probe frame to a Half-Open slave.
    Probe {
        /// Probe completion instant.
        at: SimTime,
        /// Probed node.
        node: u8,
        /// Whether the probe succeeded.
        ok: bool,
    },
    /// A slave entered (`entered = true`) or left quarantine.
    Quarantine {
        /// Quarantine boundary instant.
        at: SimTime,
        /// Quarantined node.
        node: u8,
        /// `true` on entry (breaker opened), `false` on readmission.
        entered: bool,
    },
    /// Degraded-mode rebalancing moved a lane's slaves.
    Rebalance {
        /// Rebalance instant.
        at: SimTime,
        /// The lane evacuated (`restored = false`) or repopulated.
        lane: u8,
        /// Slaves whose lane assignment changed.
        moved: u8,
        /// `false` when evacuating a degraded lane, `true` when restoring
        /// its home assignment.
        restored: bool,
    },
    /// A shard router dispatched one sub-request to a shard.
    ShardRoute {
        /// Dispatch instant.
        at: SimTime,
        /// Target shard index.
        shard: u8,
        /// The tuplespace operation being routed.
        op: TupleOpKind,
        /// `true` for a scatter-gather leg, `false` for a keyed route.
        scatter: bool,
    },
    /// A replica acknowledged its copy of a replicated write.
    Replicate {
        /// Acknowledgement instant.
        at: SimTime,
        /// The acknowledging shard.
        shard: u8,
        /// Replica acks in hand after this one, the owner's included.
        acked: u8,
        /// Whether this ack completed the write quorum.
        quorum: bool,
    },
    /// A scatter/keyed read was served away from the key's owner shard.
    ReadRepair {
        /// Repair instant.
        at: SimTime,
        /// The owner shard that missed (or was unreachable).
        shard: u8,
        /// `true` when the owner was degraded/unreachable (a degraded
        /// read), `false` when it was healthy but lagging.
        degraded: bool,
    },
}

impl TraceEvent {
    /// The instant the event was recorded at.
    #[must_use]
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Frame { at, .. }
            | TraceEvent::Retry { at, .. }
            | TraceEvent::Backoff { at, .. }
            | TraceEvent::TxnFailed { at, .. }
            | TraceEvent::Fault { at, .. }
            | TraceEvent::DeliveryDropped { at, .. }
            | TraceEvent::Link { at, .. }
            | TraceEvent::TupleOp { at, .. }
            | TraceEvent::Dedup { at, .. }
            | TraceEvent::Lease { at, .. }
            | TraceEvent::Recovery { at, .. }
            | TraceEvent::BreakerTransition { at, .. }
            | TraceEvent::Probe { at, .. }
            | TraceEvent::Quarantine { at, .. }
            | TraceEvent::Rebalance { at, .. }
            | TraceEvent::ShardRoute { at, .. }
            | TraceEvent::Replicate { at, .. }
            | TraceEvent::ReadRepair { at, .. } => *at,
        }
    }
}

/// A typed trace collector: disabled (free), bounded (ring, oldest events
/// drop and are counted), or unbounded (nothing ever drops — required when
/// downstream auditing must see every event).
///
/// # Examples
///
/// ```
/// use tsbus_obs::{TraceEvent, Tracer};
/// use tsbus_des::SimTime;
///
/// let mut tracer = Tracer::bounded(2);
/// for bits in [1, 2, 3] {
///     tracer.emit(TraceEvent::Backoff { at: SimTime::ZERO, bits });
/// }
/// assert_eq!(tracer.len(), 2);
/// assert_eq!(tracer.dropped(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Tracer<E> {
    events: VecDeque<E>,
    capacity: Option<usize>,
    enabled: bool,
    dropped: u64,
}

impl<E> Tracer<E> {
    /// A tracer that records nothing; [`emit`](Tracer::emit) is a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Tracer {
            events: VecDeque::new(),
            capacity: None,
            enabled: false,
            dropped: 0,
        }
    }

    /// A ring keeping the most recent `capacity` events; older events are
    /// evicted and counted in [`dropped`](Tracer::dropped).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "a bounded tracer needs capacity");
        Tracer {
            events: VecDeque::with_capacity(capacity),
            capacity: Some(capacity),
            enabled: true,
            dropped: 0,
        }
    }

    /// A tracer that keeps every event. Use for audit streams whose
    /// consumers (e.g. the chaos invariant checker) must never observe a
    /// gap; [`dropped`](Tracer::dropped) stays zero by construction.
    #[must_use]
    pub fn unbounded() -> Self {
        Tracer {
            events: VecDeque::new(),
            capacity: None,
            enabled: true,
            dropped: 0,
        }
    }

    /// Whether events are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op when disabled).
    pub fn emit(&mut self, event: E) {
        if !self.enabled {
            return;
        }
        if let Some(capacity) = self.capacity {
            if self.events.len() == capacity {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        self.events.push_back(event);
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &E> {
        self.events.iter()
    }

    /// Number of events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted from a bounded ring since creation (or the last
    /// [`clear`](Tracer::clear)).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Discards all held events and resets the dropped count.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

impl<E> Default for Tracer<E> {
    fn default() -> Self {
        Tracer::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.emit(TraceEvent::TxnFailed {
            at: SimTime::ZERO,
            node: 1,
        });
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
        assert!(!t.is_enabled());
    }

    #[test]
    fn bounded_ring_evicts_oldest_and_counts() {
        let mut t = Tracer::bounded(3);
        for bits in 0..5u64 {
            t.emit(TraceEvent::Backoff {
                at: SimTime::from_nanos(bits),
                bits,
            });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let first = t.events().next().expect("non-empty");
        assert_eq!(first.at(), SimTime::from_nanos(2));
    }

    #[test]
    fn unbounded_tracer_never_drops() {
        let mut t = Tracer::unbounded();
        for i in 0..10_000u64 {
            t.emit(TraceEvent::Backoff {
                at: SimTime::ZERO,
                bits: i,
            });
        }
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn clear_resets_state() {
        let mut t = Tracer::bounded(1);
        t.emit(TraceEvent::Recovery {
            at: SimTime::ZERO,
            resolved: true,
        });
        t.emit(TraceEvent::Recovery {
            at: SimTime::ZERO,
            resolved: false,
        });
        assert_eq!(t.dropped(), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn every_variant_reports_its_instant() {
        let at = SimTime::from_micros(3);
        let events = [
            TraceEvent::Frame {
                at,
                node: 1,
                class: RetryClass::Control,
                ok: true,
            },
            TraceEvent::Retry {
                at,
                node: 1,
                class: RetryClass::StreamRead,
            },
            TraceEvent::Fault {
                at,
                kind: FaultKind::ChainHeal,
            },
            TraceEvent::TupleOp {
                at,
                op: TupleOpKind::Take,
                hit: false,
            },
            TraceEvent::Dedup {
                at,
                decision: DedupDecision::Replay,
            },
            TraceEvent::Lease {
                at,
                renewed: 2,
                missed: 0,
            },
            TraceEvent::Link {
                at,
                effect: LinkEffect::Loss,
                seq: 7,
            },
            TraceEvent::BreakerTransition {
                at,
                node: 4,
                from: BreakerState::Closed,
                to: BreakerState::Open,
            },
            TraceEvent::Probe {
                at,
                node: 4,
                ok: true,
            },
            TraceEvent::Quarantine {
                at,
                node: 4,
                entered: true,
            },
            TraceEvent::Rebalance {
                at,
                lane: 1,
                moved: 3,
                restored: false,
            },
            TraceEvent::ShardRoute {
                at,
                shard: 2,
                op: TupleOpKind::Write,
                scatter: false,
            },
            TraceEvent::Replicate {
                at,
                shard: 3,
                acked: 2,
                quorum: true,
            },
            TraceEvent::ReadRepair {
                at,
                shard: 0,
                degraded: true,
            },
        ];
        for e in events {
            assert_eq!(e.at(), at);
        }
    }
}
