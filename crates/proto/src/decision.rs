//! Shared retry decisions: one ladder, every layer.
//!
//! Two decision shapes cover the stack:
//!
//! * [`frame_step`] — the wire-level ladder of the TpWIRE master: a
//!   failed transaction either fast-fails against an Open circuit
//!   breaker (the *breaker-admission* input, computed by the
//!   supervision layer), retries with the policy's backoff while
//!   attempts remain, or gives up. The backoff schedule comes from
//!   [`tsbus_faults::RetryParams`], already clamped against the reset
//!   watchdog by the bus.
//! * [`request_step`] — the request-level budget of the client and the
//!   shard router, whose re-issues are spaced by a fixed policy delay
//!   rather than wire-bit backoff: retry while total sends stay under
//!   the budget, give up after.

use tsbus_faults::RetryParams;

/// What the wire-level ladder decided for a failed transaction attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameStep {
    /// Re-issue as attempt `attempt` after `delay_bits` of backoff
    /// (zero means immediately, without a timer round-trip).
    Retry {
        /// The retry's attempt number (previous attempts + 1).
        attempt: u8,
        /// Backoff to burn first, in 64-bit wire words.
        delay_bits: u64,
    },
    /// The target is fenced off by an Open breaker: fail now instead of
    /// burning backoff against a dead slave.
    FastFail,
    /// The attempt budget is spent; the transaction failed for good.
    GiveUp,
}

/// Decides the fate of a failed transaction that has already burned
/// `attempts` sends. `fenced` is the breaker-admission input: whether
/// the supervision layer holds the target's breaker Open.
#[must_use]
pub fn frame_step(attempts: u8, fenced: bool, params: &RetryParams) -> FrameStep {
    if fenced {
        return FrameStep::FastFail;
    }
    if attempts < params.max_retries {
        let attempt = attempts + 1;
        FrameStep::Retry {
            attempt,
            delay_bits: params.backoff.delay_bits(u32::from(attempt)),
        }
    } else {
        FrameStep::GiveUp
    }
}

/// What the request-level budget decided for a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestStep {
    /// Attempts remain: re-issue after the layer's policy delay.
    Retry,
    /// The budget (total sends, the first included) is spent.
    GiveUp,
}

/// Decides whether a request that has burned `attempts` total sends may
/// be re-issued under a budget of `max_attempts`.
#[must_use]
pub fn request_step(attempts: u32, max_attempts: u32) -> RequestStep {
    if attempts < max_attempts {
        RequestStep::Retry
    } else {
        RequestStep::GiveUp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsbus_faults::Backoff;

    #[test]
    fn fenced_targets_fast_fail_regardless_of_budget() {
        let params = RetryParams::immediate(3);
        assert_eq!(frame_step(0, true, &params), FrameStep::FastFail);
        assert_eq!(frame_step(3, true, &params), FrameStep::FastFail);
    }

    #[test]
    fn ladder_walks_the_backoff_schedule_then_gives_up() {
        let params = RetryParams {
            max_retries: 2,
            backoff: Backoff::Exponential {
                base_bits: 64,
                cap_bits: 1024,
            },
        };
        assert_eq!(
            frame_step(1, false, &params),
            FrameStep::Retry {
                attempt: 2,
                delay_bits: 128,
            }
        );
        assert_eq!(frame_step(2, false, &params), FrameStep::GiveUp);
    }

    #[test]
    fn immediate_retries_report_zero_delay() {
        let params = RetryParams::immediate(1);
        assert_eq!(
            frame_step(0, false, &params),
            FrameStep::Retry {
                attempt: 1,
                delay_bits: 0,
            }
        );
    }

    #[test]
    fn request_budget_counts_the_first_send() {
        assert_eq!(request_step(1, 1), RequestStep::GiveUp);
        assert_eq!(request_step(1, 2), RequestStep::Retry);
        assert_eq!(request_step(2, 2), RequestStep::GiveUp);
    }
}
