//! Epoch-gated timers: staleness by construction.
//!
//! Every retrying layer of the stack schedules wake-ups it may no longer
//! want by the time they fire — a reply can land while its timeout is in
//! flight, an attempt can be superseded while its retry delay runs. The
//! pre-engine layers each guarded against this with hand-rolled
//! coordinate checks (`op_index`/`attempt` pairs, `retry_armed` flags),
//! and PR 7's `RetrySub` wedge showed how easily such flags drift: a
//! sub-request parked mid-delay kept its armed flag set forever and
//! could never re-arm.
//!
//! An [`EpochTimer`] replaces all of that with one rule: tokens are
//! stamped with the epoch they were issued in, and the epoch is
//! [`bump`](EpochTimer::bump)ed whenever the guarded state changes
//! generation (an attempt is superseded, the request completes). A
//! firing that presents a stale token is a guaranteed no-op — there is
//! no flag to forget to clear — and after any interleaving of
//! arm/fire/bump the timer can always be armed again.

/// A deadline-style token: proof of *which generation* of the guarded
/// state a timer was stamped in. Checked with
/// [`EpochTimer::is_current`]; firing is not consuming, so several
/// deadline timers may be outstanding against one epoch (e.g. a reply
/// timeout re-armed by a queue flush that did not burn an attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerToken {
    epoch: u64,
}

/// A one-shot token: proof of an [`EpochTimer::arm`] call. Consumed by
/// [`EpochTimer::fire`]; while one is armed and unconsumed, `arm`
/// refuses to issue another, so at most one retry delay per request is
/// ever in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArmToken {
    epoch: u64,
}

/// The epoch-gated timer state of one guarded request.
///
/// Layers schedule their own wake-up messages (the engine does not know
/// the simulator); what they carry is a token from this timer, and what
/// the handler does first is validate it. See the module docs for the
/// model.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EpochTimer {
    epoch: u64,
    armed: bool,
}

impl EpochTimer {
    /// A fresh timer at epoch zero, nothing armed.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The current epoch (mainly for diagnostics).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Stamps a deadline-style token at the current epoch.
    #[must_use]
    pub fn stamp(&self) -> TimerToken {
        TimerToken { epoch: self.epoch }
    }

    /// Whether a deadline token is still of the current generation.
    #[must_use]
    pub fn is_current(&self, token: TimerToken) -> bool {
        token.epoch == self.epoch
    }

    /// Arms the one-shot (retry-delay style): returns a token iff
    /// nothing is armed at the current epoch, so duplicate scheduling is
    /// suppressed at the source instead of by a caller-managed flag.
    #[must_use]
    pub fn arm(&mut self) -> Option<ArmToken> {
        if self.armed {
            return None;
        }
        self.armed = true;
        Some(ArmToken { epoch: self.epoch })
    }

    /// Whether the one-shot is currently armed.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Fires the one-shot: succeeds (and consumes the armed state) iff
    /// the token is of the current epoch and the one-shot is still
    /// armed. A stale-epoch firing returns `false` and changes nothing —
    /// in particular it cannot consume a delay armed by a newer
    /// generation.
    pub fn fire(&mut self, token: ArmToken) -> bool {
        if token.epoch != self.epoch || !self.armed {
            return false;
        }
        self.armed = false;
        true
    }

    /// Starts a new generation: every outstanding token (deadline or
    /// one-shot) becomes stale and the one-shot is disarmed, so the
    /// timer can immediately re-arm.
    pub fn bump(&mut self) {
        self.epoch += 1;
        self.armed = false;
    }
}

/// Timer message: the retry delay for the request under `key` elapsed.
/// Single-request layers use `key = 0`.
#[derive(Debug)]
pub struct RetryDue {
    /// The request identity the delay was armed for.
    pub key: u64,
    /// One-shot proof; validated with [`EpochTimer::fire`].
    pub token: ArmToken,
}

/// Timer message: the reply for the request under `key` is overdue.
/// Single-request layers use `key = 0`.
#[derive(Debug)]
pub struct ReplyDue {
    /// The request identity the deadline was stamped for.
    pub key: u64,
    /// Deadline proof; validated with [`EpochTimer::is_current`].
    pub token: TimerToken,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_deadline_tokens_are_rejected() {
        let mut timer = EpochTimer::new();
        let before = timer.stamp();
        assert!(timer.is_current(before));
        timer.bump();
        assert!(!timer.is_current(before));
        assert!(timer.is_current(timer.stamp()));
    }

    #[test]
    fn one_shot_arms_once_per_delay() {
        let mut timer = EpochTimer::new();
        let token = timer.arm().expect("fresh timer arms");
        assert!(timer.arm().is_none(), "double-arm is suppressed");
        assert!(timer.fire(token));
        assert!(!timer.fire(token), "a consumed token cannot fire again");
        assert!(timer.arm().is_some(), "consuming the delay re-opens arming");
    }

    #[test]
    fn bump_disarms_and_stales_the_armed_token() {
        let mut timer = EpochTimer::new();
        let token = timer.arm().expect("arms");
        timer.bump();
        assert!(!timer.fire(token), "stale-epoch firing is a no-op");
        assert!(!timer.is_armed());
        let fresh = timer.arm().expect("re-arms after bump — the wedge class");
        assert!(timer.fire(fresh));
    }

    #[test]
    fn stale_fire_does_not_consume_a_newer_delay() {
        let mut timer = EpochTimer::new();
        let old = timer.arm().expect("arms");
        timer.bump();
        let new = timer.arm().expect("arms at the new epoch");
        assert!(!timer.fire(old), "stale token bounces");
        assert!(timer.is_armed(), "the new delay is still armed");
        assert!(timer.fire(new));
    }
}
