//! The exactly-once outstanding-request table.
//!
//! Request identity in this stack is a `(client, seq)` pair ([PR 3's
//! envelope layer]); what the engine owns is the *client side* of that
//! contract, which the `ScriptedClient` and the `ShardRouter` had each
//! re-implemented:
//!
//! * [`SeqGen`] — fresh, never-reused sequence numbers (1-based).
//! * [`Watermark`] — the cumulative ack: every seq ≤ `ack` has its reply
//!   in hand, with out-of-order settlements parked above it. The servers
//!   retire their duplicate-cache entries against this watermark, so a
//!   failed request that never settles correctly stalls it.
//! * [`RequestTable`] — the in-flight map proper: one [`Entry`] per
//!   outstanding sub-request, carrying its attempt count and its
//!   [`EpochTimer`] so that bumping an attempt automatically stales
//!   every timer token of the previous one.
//!
//! [PR 3's envelope layer]: ../../tsbus_xmlwire/struct.RequestEnvelope.html

use std::collections::{BTreeMap, BTreeSet};

use crate::timer::{ArmToken, EpochTimer, TimerToken};

/// Fresh request sequence numbers, 1-based, never reused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqGen {
    next: u64,
}

impl Default for SeqGen {
    fn default() -> Self {
        SeqGen { next: 1 }
    }
}

impl SeqGen {
    /// A generator whose first draw is 1.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws the next fresh seq.
    pub fn fresh(&mut self) -> u64 {
        let seq = self.next;
        self.next += 1;
        seq
    }
}

/// The cumulative-ack watermark of the exactly-once layer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Watermark {
    ack: u64,
    /// Settled seqs above the watermark (replies received out of order).
    settled: BTreeSet<u64>,
}

impl Watermark {
    /// A watermark with nothing settled.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The cumulative ack: every seq ≤ this has its reply in hand.
    #[must_use]
    pub fn ack(&self) -> u64 {
        self.ack
    }

    /// Records that the reply for `seq` is in hand, advancing the
    /// watermark over any now-contiguous prefix. Returns whether the seq
    /// was newly settled (`false` for duplicates of settled requests).
    pub fn settle(&mut self, seq: u64) -> bool {
        if seq <= self.ack || !self.settled.insert(seq) {
            return false;
        }
        while self.settled.remove(&(self.ack + 1)) {
            self.ack += 1;
        }
        true
    }
}

/// One outstanding request: its attempt count and epoch timer. The
/// request payload (`T`) is whatever the layer needs to resume it.
#[derive(Debug)]
pub struct Entry<T> {
    attempts: u32,
    timer: EpochTimer,
    /// Layer-owned resume state (role, target, encoded request, …).
    pub payload: T,
}

impl<T> Entry<T> {
    /// A first-attempt entry with a fresh timer.
    #[must_use]
    pub fn new(payload: T) -> Self {
        Entry {
            attempts: 1,
            timer: EpochTimer::new(),
            payload,
        }
    }

    /// Sends of this request so far (1 = no retry yet).
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Opens the next attempt: bumps the count and stales every timer
    /// token of the previous one. Returns the new attempt number.
    pub fn next_attempt(&mut self) -> u32 {
        self.attempts += 1;
        self.timer.bump();
        self.attempts
    }

    /// Stamps a reply-deadline token for the current attempt.
    #[must_use]
    pub fn stamp(&self) -> TimerToken {
        self.timer.stamp()
    }

    /// Whether a reply-deadline token still names the current attempt.
    #[must_use]
    pub fn is_current(&self, token: TimerToken) -> bool {
        self.timer.is_current(token)
    }

    /// Arms the retry delay; `None` while one is already pending.
    #[must_use]
    pub fn arm_retry(&mut self) -> Option<ArmToken> {
        self.timer.arm()
    }

    /// Fires the retry delay: `true` iff `token` is current and the
    /// delay was still armed (the firing consumes it).
    pub fn fire_retry(&mut self, token: ArmToken) -> bool {
        self.timer.fire(token)
    }
}

/// The outstanding-request table: seq allocation, the settlement
/// watermark, and the in-flight entries, in one place.
#[derive(Debug, Default)]
pub struct RequestTable<T> {
    seqs: SeqGen,
    watermark: Watermark,
    entries: BTreeMap<u64, Entry<T>>,
}

impl<T> RequestTable<T> {
    /// An empty table whose first request will be seq 1.
    #[must_use]
    pub fn new() -> Self {
        RequestTable {
            seqs: SeqGen::new(),
            watermark: Watermark::new(),
            entries: BTreeMap::new(),
        }
    }

    /// Registers a new first-attempt request under a fresh seq.
    pub fn open(&mut self, payload: T) -> u64 {
        let seq = self.seqs.fresh();
        self.entries.insert(seq, Entry::new(payload));
        seq
    }

    /// Re-registers a first-attempt request under an *existing*
    /// identity — e.g. a read-repair re-issuing the original write so a
    /// copy that did land is deduplicated rather than re-applied.
    pub fn restore(&mut self, seq: u64, payload: T) {
        self.entries.insert(seq, Entry::new(payload));
    }

    /// Moves an entry to a fresh seq, returning it (the exactly-once
    /// *ablation*: a retry under a fresh identity defeats the server's
    /// duplicate cache). `None` if `seq` is not outstanding.
    pub fn rekey(&mut self, seq: u64) -> Option<u64> {
        let entry = self.entries.remove(&seq)?;
        let fresh = self.seqs.fresh();
        self.entries.insert(fresh, entry);
        Some(fresh)
    }

    /// Draws a fresh seq without opening an entry (out-of-band
    /// identities, e.g. fire-and-forget heartbeats).
    pub fn fresh_seq(&mut self) -> u64 {
        self.seqs.fresh()
    }

    /// The outstanding entry under `seq`.
    #[must_use]
    pub fn get(&self, seq: u64) -> Option<&Entry<T>> {
        self.entries.get(&seq)
    }

    /// The outstanding entry under `seq`, mutably.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut Entry<T>> {
        self.entries.get_mut(&seq)
    }

    /// Closes and returns the entry under `seq`.
    pub fn remove(&mut self, seq: u64) -> Option<Entry<T>> {
        self.entries.remove(&seq)
    }

    /// Whether `seq` is outstanding.
    #[must_use]
    pub fn contains(&self, seq: u64) -> bool {
        self.entries.contains_key(&seq)
    }

    /// Iterates the outstanding entries in seq order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Entry<T>)> {
        self.entries.iter().map(|(seq, entry)| (*seq, entry))
    }

    /// Outstanding entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is outstanding.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Settles `seq` on the watermark (see [`Watermark::settle`]).
    pub fn settle(&mut self, seq: u64) -> bool {
        self.watermark.settle(seq)
    }

    /// The cumulative ack to stamp on outgoing envelopes.
    #[must_use]
    pub fn ack(&self) -> u64 {
        self.watermark.ack()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_advances_over_contiguous_prefixes_only() {
        let mut w = Watermark::new();
        assert!(w.settle(2));
        assert_eq!(w.ack(), 0, "seq 1 is still missing");
        assert!(w.settle(1));
        assert_eq!(w.ack(), 2, "the prefix closed");
        assert!(!w.settle(2), "duplicates of settled seqs are stale");
        assert!(!w.settle(1));
        assert!(w.settle(4));
        assert_eq!(w.ack(), 2, "a gap at 3 stalls the watermark");
    }

    #[test]
    fn attempts_stale_previous_tokens() {
        let mut entry = Entry::new(());
        let deadline = entry.stamp();
        let retry = entry.arm_retry().expect("arms");
        assert_eq!(entry.next_attempt(), 2);
        assert!(!entry.is_current(deadline));
        assert!(!entry.fire_retry(retry));
        assert!(entry.is_current(entry.stamp()));
    }

    #[test]
    fn table_allocates_restores_and_rekeys() {
        let mut table: RequestTable<&str> = RequestTable::new();
        let a = table.open("a");
        let b = table.open("b");
        assert_eq!((a, b), (1, 2));
        let moved = table.rekey(a).expect("outstanding");
        assert_eq!(moved, 3, "rekey draws a fresh identity");
        assert!(!table.contains(a));
        assert_eq!(table.get(moved).map(|e| e.payload), Some("a"));
        table.remove(b);
        table.restore(b, "b again");
        assert_eq!(table.get(b).map(|e| e.attempts()), Some(1));
        let seqs: Vec<u64> = table.iter().map(|(seq, _)| seq).collect();
        assert_eq!(seqs, vec![2, 3], "iteration is seq-ordered");
    }

    #[test]
    fn table_watermark_is_shared_state() {
        let mut table: RequestTable<()> = RequestTable::new();
        let seq = table.open(());
        assert_eq!(table.ack(), 0);
        assert!(table.settle(seq));
        assert_eq!(table.ack(), 1);
        let hb = table.fresh_seq();
        assert_eq!(hb, 2, "out-of-band identities share the space");
    }
}
