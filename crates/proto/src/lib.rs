//! tsbus-proto: the request-lifecycle engine.
//!
//! The stack layers a tuplespace client protocol over the TpWIRE bus,
//! and by PR 7 three layers had each re-implemented the same request
//! lifecycle — identities, reply deadlines, staleness-guarded retry
//! timers, backoff, breaker admission, lifecycle counters: the
//! `ScriptedClient` recovery path, the `ShardRouter` sub-request
//! machinery, and the TpWIRE master's frame-retry ladder. The drift
//! between the three copies is exactly where the bugs lived (the PR 7
//! `RetrySub` stale-armed-flag wedge was a mistake the client layer had
//! already solved), and one engine is also what future batching and
//! pipelining work needs to optimize once rather than thrice.
//!
//! The engine is deterministic, simulator-agnostic plain state: layers
//! keep scheduling their own messages through the DES and keep their
//! policy knobs; what they delegate here is
//!
//! * **identity** — [`SeqGen`], [`Watermark`], [`RequestTable`]: fresh
//!   seqs, the cumulative-ack settlement watermark, and the
//!   outstanding-request map with per-request attempt counts;
//! * **timing validity** — [`EpochTimer`] with [`TimerToken`] /
//!   [`ArmToken`]: every timer wake-up carries a token, any firing
//!   against a stale epoch is a guaranteed no-op, and a one-shot retry
//!   delay can always re-arm (the `retry_armed` bug class is
//!   unrepresentable);
//! * **decisions** — [`frame_step`] (wire ladder with
//!   [`tsbus_faults`] backoff and breaker admission) and
//!   [`request_step`] (request-level attempt budgets);
//! * **instruments** — [`ProtoInstruments`], the shared `proto/*`
//!   counter taxonomy on the [`tsbus_obs`] registry.
//!
//! What stays in the layers: transport encoding, routing, parking
//! policy, quorum/scatter bookkeeping — the *policy* shims around this
//! engine. See `DESIGN.md` ("Request-lifecycle layering") for the
//! ownership table.

#![warn(missing_docs)]

mod decision;
mod instruments;
mod table;
mod timer;

pub use decision::{frame_step, request_step, FrameStep, RequestStep};
pub use instruments::ProtoInstruments;
pub use table::{Entry, RequestTable, SeqGen, Watermark};
pub use timer::{ArmToken, EpochTimer, ReplyDue, RetryDue, TimerToken};
