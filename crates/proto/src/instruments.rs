//! The standard `proto/*` instrument bundle.
//!
//! Before the engine, each layer counted the same lifecycle events
//! under drifted paths (`recovery/reply_timeouts` vs
//! `shard/reply_timeouts`, duplicated retry counters). The bundle pins
//! one taxonomy:
//!
//! | path                   | meaning                                        |
//! |------------------------|------------------------------------------------|
//! | `proto/retries`        | request re-issues (same identity unless ablated) |
//! | `proto/reply_timeouts` | attempts declared overdue by a reply deadline  |
//! | `proto/stale_replies`  | replies discarded by identity correlation      |
//! | `proto/fast_fails`     | attempts fenced off by supervision (lazy)      |
//! | `proto/parked_subops`  | requests parked against degraded targets       |
//! | `proto/queue_flushes`  | degraded-queue probe flushes                   |
//!
//! Per-layer views come from the snapshot layer, not from path drift: a
//! harness that merges several registries prefixes each one (e.g.
//! `client/proto/reply_timeouts` next to `router/proto/reply_timeouts`),
//! so `Snapshot::merge`/`diff`/`to_text` keep working unchanged.
//!
//! The bundle registers on a *caller-owned* registry so a layer's other
//! counters (lease bookkeeping, shard routing) live alongside it.

use tsbus_obs::{CounterId, Registry};

/// Counter handles for the `proto/*` taxonomy on one layer's registry.
#[derive(Debug)]
pub struct ProtoInstruments {
    /// `proto/retries`.
    pub retries: CounterId,
    /// `proto/reply_timeouts`.
    pub reply_timeouts: CounterId,
    /// `proto/stale_replies`.
    pub stale_replies: CounterId,
    /// `proto/fast_fails`; `None` until first booked (or registered
    /// eagerly by [`with_parking`](Self::with_parking)) so layers that
    /// never see supervision keep their exact snapshot layout.
    pub fast_fails: Option<CounterId>,
    /// `proto/parked_subops`; only parking layers register it.
    pub parked_subops: Option<CounterId>,
    /// `proto/queue_flushes`; only parking layers register it.
    pub queue_flushes: Option<CounterId>,
}

impl ProtoInstruments {
    /// Registers the core lifecycle counters; fast-fails stay lazy and
    /// the parking pair is absent.
    pub fn new(registry: &mut Registry) -> Self {
        ProtoInstruments {
            retries: registry.counter("proto/retries"),
            reply_timeouts: registry.counter("proto/reply_timeouts"),
            stale_replies: registry.counter("proto/stale_replies"),
            fast_fails: None,
            parked_subops: None,
            queue_flushes: None,
        }
    }

    /// Registers the full bundle, parking counters and eager fast-fails
    /// included — the shape of a layer that parks work against degraded
    /// targets (the shard router).
    pub fn with_parking(registry: &mut Registry) -> Self {
        let mut bundle = Self::new(registry);
        bundle.fast_fails = Some(registry.counter("proto/fast_fails"));
        bundle.parked_subops = Some(registry.counter("proto/parked_subops"));
        bundle.queue_flushes = Some(registry.counter("proto/queue_flushes"));
        bundle
    }

    /// Books one supervision fast-fail, registering the counter on
    /// first use.
    pub fn fast_fail(&mut self, registry: &mut Registry) {
        let id = match self.fast_fails {
            Some(id) => id,
            None => {
                let id = registry.counter("proto/fast_fails");
                self.fast_fails = Some(id);
                id
            }
        };
        registry.inc(id);
    }

    /// Fast-fails booked so far (0 while unregistered).
    #[must_use]
    pub fn fast_fail_count(&self, registry: &Registry) -> u64 {
        self.fast_fails.map_or(0, |id| registry.count(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_bundle_keeps_fast_fails_lazy() {
        let mut registry = Registry::new();
        let mut bundle = ProtoInstruments::new(&mut registry);
        registry.inc(bundle.retries);
        assert_eq!(bundle.fast_fail_count(&registry), 0);
        assert_eq!(registry.len(), 3, "lazy until booked");
        bundle.fast_fail(&mut registry);
        bundle.fast_fail(&mut registry);
        assert_eq!(bundle.fast_fail_count(&registry), 2);
        assert_eq!(registry.len(), 4);
    }

    #[test]
    fn parking_bundle_registers_everything_eagerly() {
        let mut registry = Registry::new();
        let bundle = ProtoInstruments::with_parking(&mut registry);
        assert_eq!(registry.len(), 6);
        assert!(bundle.fast_fails.is_some());
        assert!(bundle.parked_subops.is_some());
        assert!(bundle.queue_flushes.is_some());
    }
}
