//! Property tests for [`EpochTimer`]: the regression class of the PR 7
//! `RetrySub` wedge. For *arbitrary* interleavings of stamp, arm, fire
//! (fresh or replayed tokens), and bump:
//!
//! * a firing whose token epoch differs from the current epoch is a
//!   guaranteed no-op — it neither succeeds nor perturbs the armed
//!   state of a newer generation;
//! * the timer can always re-arm: whenever the one-shot is not armed,
//!   `arm` succeeds (the wedge was precisely a state from which re-arm
//!   was impossible).
//!
//! The implementation is driven next to a trivial reference model; any
//! divergence in results or observable state fails the property.

use proptest::prelude::*;
use tsbus_proto::{ArmToken, EpochTimer};

/// One scripted action against the timer. Token-carrying actions pick
/// from the history of issued tokens so replays and stale firings are
/// exercised as often as fresh ones.
#[derive(Debug, Clone, Copy)]
enum Action {
    Stamp,
    Arm,
    /// Fire the `pick % issued`-th arm token ever issued (no-op while
    /// none were issued yet).
    Fire(usize),
    Bump,
}

fn actions() -> BoxedStrategy<Vec<Action>> {
    let action = prop_oneof![
        Just(Action::Stamp),
        Just(Action::Arm),
        (0usize..64).prop_map(Action::Fire),
        Just(Action::Bump),
    ];
    proptest::collection::vec(action, 0..200)
}

proptest! {
    #[test]
    fn stale_firings_are_noops_and_rearm_is_always_possible(script in actions()) {
        let mut timer = EpochTimer::new();
        // Reference model: the epoch counter, whether the one-shot is
        // armed, and the epoch each issued token was stamped in.
        let mut model_epoch: u64 = 0;
        let mut model_armed = false;
        let mut arm_tokens: Vec<(ArmToken, u64)> = Vec::new();
        let mut deadline_tokens: Vec<(tsbus_proto::TimerToken, u64)> = Vec::new();

        for action in script {
            match action {
                Action::Stamp => {
                    let token = timer.stamp();
                    prop_assert!(timer.is_current(token), "a fresh stamp is current");
                    deadline_tokens.push((token, model_epoch));
                }
                Action::Arm => {
                    let issued = timer.arm();
                    if model_armed {
                        prop_assert!(issued.is_none(), "double-arm must be refused");
                    } else {
                        // The wedge regression: an unarmed timer can
                        // ALWAYS arm, whatever happened before.
                        let token = issued.expect("unarmed timer re-arms");
                        arm_tokens.push((token, model_epoch));
                        model_armed = true;
                    }
                }
                Action::Fire(pick) => {
                    if arm_tokens.is_empty() {
                        continue;
                    }
                    let (token, stamped_at) = arm_tokens[pick % arm_tokens.len()];
                    let fired = timer.fire(token);
                    let expected = model_armed && stamped_at == model_epoch;
                    prop_assert_eq!(fired, expected);
                    if stamped_at != model_epoch {
                        // The stale no-op guarantee: state untouched.
                        prop_assert_eq!(timer.is_armed(), model_armed);
                        prop_assert_eq!(timer.epoch(), model_epoch);
                    }
                    if fired {
                        model_armed = false;
                    }
                }
                Action::Bump => {
                    timer.bump();
                    model_epoch += 1;
                    model_armed = false;
                }
            }
            // Invariants after every step: the model and the timer
            // agree, deadline tokens are current exactly when their
            // stamping epoch is, and firing is never wedged shut.
            prop_assert_eq!(timer.epoch(), model_epoch);
            prop_assert_eq!(timer.is_armed(), model_armed);
            for &(token, stamped_at) in &deadline_tokens {
                prop_assert_eq!(timer.is_current(token), stamped_at == model_epoch);
            }
            if !model_armed {
                let mut probe = timer.clone();
                prop_assert!(probe.arm().is_some(), "re-arm must stay possible");
            }
        }
    }

    /// Bumping invalidates every outstanding token at once — there is
    /// no interleaving that smuggles an old token past a new epoch.
    #[test]
    fn bump_stales_all_outstanding_tokens(arms in 1usize..8, bumps in 1usize..4) {
        let mut timer = EpochTimer::new();
        let mut tokens = Vec::new();
        for _ in 0..arms {
            let deadline = timer.stamp();
            let armed = timer.arm().expect("unarmed after bump");
            tokens.push((deadline, armed));
            for _ in 0..bumps {
                timer.bump();
            }
        }
        let (_, last_armed) = tokens[tokens.len() - 1];
        for (deadline, armed) in tokens {
            prop_assert!(!timer.is_current(deadline));
            prop_assert!(!timer.fire(armed));
        }
        prop_assert!(!timer.fire(last_armed), "even the newest pre-bump token is dead");
        prop_assert!(timer.arm().is_some());
    }
}
