//! The TpWIRE slave device model: registers, selection, command execution,
//! self-reset, and the memory-mapped stream FIFO used by the master relay.
//!
//! A [`SlaveDevice`] is a plain state machine; the bus model (one per
//! simulated chain) owns a vector of them and drives them with decoded
//! [`TxFrame`]s. Timing lives entirely in the bus/analytic layers — the
//! slave only answers *what* it replies, never *when*.
//!
//! ## The stream FIFO convention
//!
//! Pointer address [`STREAM_ADDR`] (0xFF) in the memory space is a
//! memory-mapped FIFO rather than a RAM cell: `READ_DATA` there pops the
//! slave's outbound stream (bytes its attached device wants relayed), and
//! `WRITE_DATA` there pushes onto the inbound stream (bytes delivered to the
//! attached device). Reads/writes at 0xFF do not auto-increment the pointer,
//! so a block transfer is `SELECT`, `SET_POINTER 0xFF`, then N data frames.
//! This concretizes the "memory mapped I/O register set" the specification
//! mentions; see `DESIGN.md` §5.

use std::collections::VecDeque;

use tsbus_des::SimTime;

use crate::frame::{Command, RxFrame, RxType, TxFrame};
use crate::node::{AddressSpace, NodeId, SystemReg};
use crate::wiring::BusParams;

/// The memory-space pointer value that addresses the stream FIFO.
pub const STREAM_ADDR: u8 = 0xFF;

/// Size of the byte-addressable memory space (pointer is 8 bits; the last
/// address is the stream FIFO).
pub const MEMORY_BYTES: usize = 256;

/// Per-line interface state of a slave. In multi-bus (`ParallelBuses`)
/// wirings each slave has one independent interface per line, each with its
/// own selection latch, pointer, alternating-bit read port and reset
/// watchdog; memory, system registers and the stream FIFOs are shared.
#[derive(Debug, Clone)]
struct Port {
    /// `Some(space)` while this slave is the selected one on this line.
    selected: Option<AddressSpace>,
    pointer: u8,
    /// Alternating-bit state of the stream FIFO read port: the toggle of
    /// the last serviced `READ_DATA` and the byte it returned. A repeated
    /// read with the same toggle (a master retry after a corrupted RX)
    /// returns the latched byte instead of popping a fresh one.
    stream_toggle: Option<bool>,
    stream_latch: u8,
    /// Instant of the last valid TX frame observed (for the self-reset
    /// timeout).
    last_valid_tx: SimTime,
    /// While set, this interface is holding its reset active and ignores
    /// frames.
    reset_until: Option<SimTime>,
}

impl Port {
    fn new() -> Self {
        Port {
            selected: None,
            pointer: 0,
            stream_toggle: None,
            stream_latch: 0,
            last_valid_tx: SimTime::ZERO,
            reset_until: None,
        }
    }
}

/// A TpWIRE slave: registers, daisy-chain position and stream FIFOs.
#[derive(Debug, Clone)]
pub struct SlaveDevice {
    node: NodeId,
    ports: Vec<Port>,
    memory: Box<[u8; MEMORY_BYTES]>,
    command_reg: u8,
    dma_counter: u8,
    spi: u8,
    pending_interrupt: bool,
    outbound: VecDeque<u8>,
    inbound: VecDeque<u8>,
    resets: u64,
}

impl SlaveDevice {
    /// Creates a powered-on slave with cleared registers.
    ///
    /// # Panics
    ///
    /// Panics if `node` is the broadcast id — broadcast is virtual, no
    /// physical slave carries it.
    #[must_use]
    pub fn new(node: NodeId) -> Self {
        assert!(
            !node.is_broadcast(),
            "the broadcast node id cannot be instantiated as a device"
        );
        SlaveDevice {
            node,
            ports: vec![Port::new()],
            memory: Box::new([0; MEMORY_BYTES]),
            command_reg: 0,
            dma_counter: 0,
            spi: 0,
            pending_interrupt: false,
            outbound: VecDeque::new(),
            inbound: VecDeque::new(),
            resets: 0,
        }
    }

    /// Gives the slave `n` independent line interfaces (for `ParallelBuses`
    /// wirings). Must be called before the first frame is processed.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn set_port_count(&mut self, n: usize) {
        assert!(n > 0, "a slave needs at least one bus interface");
        self.ports = vec![Port::new(); n];
    }

    /// This slave's node id.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Whether the slave currently has a pending interrupt (it raises one
    /// whenever its outbound stream is non-empty, or when
    /// [`raise_interrupt`](Self::raise_interrupt) was called).
    #[must_use]
    pub fn pending_interrupt(&self) -> bool {
        self.pending_interrupt || !self.outbound.is_empty()
    }

    /// Raises the interrupt flag explicitly (attachment-level signal).
    pub fn raise_interrupt(&mut self) {
        self.pending_interrupt = true;
    }

    /// Number of self-resets the slave has performed.
    #[must_use]
    pub fn reset_count(&self) -> u64 {
        self.resets
    }

    /// Bytes waiting in the outbound stream (queued by the attachment, not
    /// yet read by the master).
    #[must_use]
    pub fn outbound_len(&self) -> usize {
        self.outbound.len()
    }

    /// Queues attachment bytes for the master to collect.
    pub fn push_outbound(&mut self, bytes: impl IntoIterator<Item = u8>) {
        self.outbound.extend(bytes);
    }

    /// Drains bytes the master has written for the attachment.
    #[must_use]
    pub fn take_inbound(&mut self) -> Vec<u8> {
        self.inbound.drain(..).collect()
    }

    /// Bytes waiting in the inbound stream.
    #[must_use]
    pub fn inbound_len(&self) -> usize {
        self.inbound.len()
    }

    /// Direct memory access for attachments/tests (the attached CPU shares
    /// the memory with the bus interface).
    #[must_use]
    pub fn memory(&self, addr: u8) -> u8 {
        self.memory[usize::from(addr)]
    }

    /// Direct memory write for attachments/tests.
    pub fn set_memory(&mut self, addr: u8, value: u8) {
        self.memory[usize::from(addr)] = value;
    }

    /// The command register's current value (last `WRITE_COMMAND` or
    /// broadcast command received).
    #[must_use]
    pub fn command_reg(&self) -> u8 {
        self.command_reg
    }

    /// The flags register image: bit 0 = pending interrupt, bit 1 = inbound
    /// stream non-empty, bit 2 = outbound stream non-empty.
    #[must_use]
    pub fn flags(&self) -> u8 {
        u8::from(self.pending_interrupt())
            | (u8::from(!self.inbound.is_empty()) << 1)
            | (u8::from(!self.outbound.is_empty()) << 2)
    }

    /// Performs the self-reset of one line interface: clears its selection
    /// and pointer, clears the shared command/DMA registers and drops the
    /// pending-interrupt latch. Stream FIFOs and memory survive (they
    /// belong to the attachment side).
    fn reset(&mut self, port: usize, now: SimTime, params: &BusParams) {
        self.command_reg = 0;
        self.dma_counter = 0;
        self.pending_interrupt = false;
        self.resets += 1;
        let p = &mut self.ports[port];
        p.selected = None;
        p.pointer = 0;
        let until = now + params.reset_active();
        p.reset_until = Some(until);
        // The watchdog restarts once the reset pulse ends (otherwise an
        // idle slave would reset in a tight loop).
        p.last_valid_tx = until;
    }

    /// Forces an immediate hardware reset of every line interface, as if
    /// the watchdog fired on each: selection, pointers and the alternating-
    /// bit read latches revert to power-on state, and every interface holds
    /// its reset active for the spec's pulse length starting at `now`.
    /// Used by fault injection; counts once per interface in
    /// [`reset_count`](Self::reset_count).
    pub fn force_reset(&mut self, now: SimTime, params: &BusParams) {
        for port in 0..self.ports.len() {
            self.reset(port, now, params);
            let p = &mut self.ports[port];
            p.stream_toggle = None;
            p.stream_latch = 0;
        }
    }

    /// Checks the reset timeout against `now`, possibly entering or leaving
    /// the reset state. Returns `true` if this interface is currently
    /// holding reset (and therefore ignores the incoming frame).
    fn poll_reset(&mut self, port: usize, now: SimTime, params: &BusParams) -> bool {
        if let Some(until) = self.ports[port].reset_until {
            if now < until {
                return true;
            }
            self.ports[port].reset_until = None;
        }
        let idle = now.saturating_duration_since(self.ports[port].last_valid_tx);
        if idle >= params.reset_timeout() {
            // The reset fired at timeout expiry; it may already be over.
            let fired_at = self.ports[port].last_valid_tx + params.reset_timeout();
            self.reset(port, fired_at, params);
            let until = self.ports[port].reset_until.expect("reset just set");
            if now < until {
                return true;
            }
            self.ports[port].reset_until = None;
        }
        false
    }

    /// Processes one valid TX frame observed on the chain at instant `now`.
    ///
    /// Every slave on the chain sees every TX frame (selection state is
    /// updated by `SELECT_NODE` in all of them); only the selected slave
    /// executes data commands and replies. Returns the RX reply this slave
    /// produces, if any — without the INT bit, which the bus computes from
    /// the chain path.
    pub fn on_tx(
        &mut self,
        frame: &TxFrame,
        port: usize,
        now: SimTime,
        params: &BusParams,
    ) -> Option<RxFrame> {
        assert!(port < self.ports.len(), "no such bus interface: {port}");
        if self.poll_reset(port, now, params) {
            return None;
        }
        self.ports[port].last_valid_tx = now;
        if frame.cmd == Command::SelectNode {
            let target = frame.data & 0x7F;
            let space = if frame.data & 0x80 != 0 {
                AddressSpace::System
            } else {
                AddressSpace::Memory
            };
            let broadcast = target == NodeId::BROADCAST.raw();
            if target == self.node.raw() || broadcast {
                self.ports[port].selected = Some(space);
                if broadcast {
                    return None; // broadcast selections are not acknowledged
                }
                return Some(RxFrame::status_ack(
                    self.node,
                    self.pending_interrupt(),
                    false,
                ));
            }
            self.ports[port].selected = None;
            return None;
        }
        let Some(space) = self.ports[port].selected else {
            return None; // not selected on this line: observe, stay quiet
        };
        let reply = match frame.cmd {
            Command::SelectNode => unreachable!("handled above"),
            Command::Status => RxFrame::status_ack(self.node, self.pending_interrupt(), false),
            Command::WriteData => {
                self.write_data(port, space, frame.data);
                RxFrame::status_ack(self.node, self.pending_interrupt(), false)
            }
            Command::ReadData => {
                let value = self.read_data(port, space, frame.data);
                RxFrame::new(false, RxType::Data, value)
            }
            Command::ReadFlags => RxFrame::new(false, RxType::Flags, self.flags()),
            Command::WriteCommand => {
                self.command_reg = frame.data;
                if frame.data & 0x01 != 0 {
                    // Command bit 0: acknowledge/clear the interrupt latch.
                    self.pending_interrupt = false;
                }
                RxFrame::status_ack(self.node, self.pending_interrupt(), false)
            }
            Command::ReadSpi => RxFrame::new(false, RxType::Spi, self.spi),
            Command::SetPointer => {
                self.ports[port].pointer = frame.data;
                RxFrame::status_ack(self.node, self.pending_interrupt(), false)
            }
        };
        Some(reply)
    }

    /// Observes someone else's DMA burst passing through on `port`: the
    /// arming select addressed another node, so this interface deselects,
    /// and the frames feed its reset watchdog. Mirrors what `on_tx` does
    /// for non-addressed slaves on the per-frame path.
    pub fn observe_burst(&mut self, port: usize, now: SimTime, params: &BusParams) {
        if self.poll_reset(port, now, params) {
            return;
        }
        self.ports[port].last_valid_tx = now;
        self.ports[port].selected = None;
    }

    /// Applies a DMA burst write of `bytes` into the stream FIFO through
    /// port `port` (the master armed the DMA counter and streamed the block
    /// back-to-back). Returns `false` without applying anything if the
    /// interface is holding reset.
    ///
    /// Side effects mirror the real sequence: the interface ends up
    /// selected in memory space with its pointer at the stream FIFO and the
    /// DMA counter run down to zero.
    pub fn dma_burst_write(
        &mut self,
        port: usize,
        bytes: &[u8],
        now: SimTime,
        params: &BusParams,
    ) -> bool {
        if self.poll_reset(port, now, params) {
            return false;
        }
        self.ports[port].last_valid_tx = now;
        self.ports[port].selected = Some(AddressSpace::Memory);
        self.ports[port].pointer = STREAM_ADDR;
        self.dma_counter = 0;
        self.inbound.extend(bytes.iter().copied());
        true
    }

    /// Serves a DMA burst read of up to `k` stream bytes through port
    /// `port`. Returns `None` without popping anything if the interface is
    /// holding reset; otherwise exactly `min(k, queued)` bytes.
    pub fn dma_burst_read(
        &mut self,
        port: usize,
        k: usize,
        now: SimTime,
        params: &BusParams,
    ) -> Option<Vec<u8>> {
        if self.poll_reset(port, now, params) {
            return None;
        }
        self.ports[port].last_valid_tx = now;
        self.ports[port].selected = Some(AddressSpace::Memory);
        self.ports[port].pointer = STREAM_ADDR;
        self.dma_counter = 0;
        let take = k.min(self.outbound.len());
        Some(self.outbound.drain(..take).collect())
    }

    fn write_data(&mut self, port: usize, space: AddressSpace, value: u8) {
        let pointer = self.ports[port].pointer;
        match space {
            AddressSpace::Memory => {
                if pointer == STREAM_ADDR {
                    self.inbound.push_back(value);
                } else {
                    self.memory[usize::from(pointer)] = value;
                    self.ports[port].pointer = pointer.wrapping_add(1);
                }
            }
            AddressSpace::System => {
                match SystemReg::from_offset(pointer) {
                    SystemReg::Command => self.command_reg = value,
                    SystemReg::Flags => {} // flags are read-only
                    SystemReg::DmaCounter => self.dma_counter = value,
                    SystemReg::Spi => self.spi = value,
                }
                self.ports[port].pointer = pointer.wrapping_add(1);
            }
        }
    }

    fn read_data(&mut self, port: usize, space: AddressSpace, request_data: u8) -> u8 {
        let pointer = self.ports[port].pointer;
        match space {
            AddressSpace::Memory => {
                if pointer == STREAM_ADDR {
                    // Alternating-bit read port: DATA[0] of the request is
                    // the toggle. A repeated toggle is a retry and returns
                    // the latched byte; see the module docs.
                    let toggle = request_data & 1 == 1;
                    if self.ports[port].stream_toggle == Some(toggle) {
                        return self.ports[port].stream_latch;
                    }
                    let byte = self.outbound.pop_front().unwrap_or(0);
                    self.ports[port].stream_toggle = Some(toggle);
                    self.ports[port].stream_latch = byte;
                    byte
                } else {
                    let value = self.memory[usize::from(pointer)];
                    self.ports[port].pointer = pointer.wrapping_add(1);
                    value
                }
            }
            AddressSpace::System => {
                let value = match SystemReg::from_offset(pointer) {
                    SystemReg::Command => self.command_reg,
                    SystemReg::Flags => self.flags(),
                    SystemReg::DmaCounter => self.dma_counter,
                    SystemReg::Spi => self.spi,
                };
                self.ports[port].pointer = pointer.wrapping_add(1);
                value
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsbus_des::SimDuration;

    fn slave(id: u8) -> SlaveDevice {
        SlaveDevice::new(NodeId::new(id).expect("valid test id"))
    }

    fn params() -> BusParams {
        BusParams::theseus_default()
    }

    fn select(dev: &mut SlaveDevice, id: u8, system: bool, now: SimTime) -> Option<RxFrame> {
        let node = NodeId::new(id).expect("valid");
        dev.on_tx(&TxFrame::select(node, system), 0, now, &params())
    }

    #[test]
    fn selection_targets_one_node() {
        let mut a = slave(1);
        let mut b = slave(2);
        let t = SimTime::from_nanos(100);
        let frame = TxFrame::select(NodeId::new(1).expect("valid"), false);
        let reply_a = a.on_tx(&frame, 0, t, &params());
        let reply_b = b.on_tx(&frame, 0, t, &params());
        assert!(reply_a.is_some(), "selected slave acknowledges");
        assert!(reply_b.is_none(), "other slaves stay quiet");
        // The ack carries the node id.
        assert_eq!(
            reply_a.expect("ack").status_node(),
            Some(NodeId::new(1).expect("valid"))
        );
    }

    #[test]
    fn broadcast_selects_everyone_silently() {
        let mut a = slave(1);
        let mut b = slave(2);
        let t = SimTime::from_nanos(100);
        let frame = TxFrame::select(NodeId::BROADCAST, false);
        assert!(a.on_tx(&frame, 0, t, &params()).is_none());
        assert!(b.on_tx(&frame, 0, t, &params()).is_none());
        // Both now execute data commands (but in a real broadcast write the
        // master gets no ack; here we drive them individually).
        let w = TxFrame::new(Command::WriteData, 0xAB);
        let _ = a.on_tx(&w, 0, t, &params());
        let _ = b.on_tx(&w, 0, t, &params());
        assert_eq!(a.memory(0), 0xAB);
        assert_eq!(b.memory(0), 0xAB);
    }

    #[test]
    fn unselected_slaves_ignore_data_commands() {
        let mut dev = slave(3);
        let t = SimTime::from_nanos(10);
        let reply = dev.on_tx(&TxFrame::new(Command::WriteData, 0xFF), 0, t, &params());
        assert!(reply.is_none());
        assert_eq!(dev.memory(0), 0);
    }

    #[test]
    fn memory_write_read_roundtrip_with_autoincrement() {
        let mut dev = slave(1);
        let t = SimTime::from_nanos(10);
        select(&mut dev, 1, false, t);
        dev.on_tx(&TxFrame::new(Command::SetPointer, 0x10), 0, t, &params());
        for (i, byte) in [0xDE, 0xAD, 0xBE, 0xEF].iter().enumerate() {
            dev.on_tx(&TxFrame::new(Command::WriteData, *byte), 0, t, &params());
            assert_eq!(dev.memory(0x10 + i as u8), *byte);
        }
        dev.on_tx(&TxFrame::new(Command::SetPointer, 0x10), 0, t, &params());
        let reads: Vec<u8> = (0..4)
            .map(|_| {
                dev.on_tx(&TxFrame::new(Command::ReadData, 0), 0, t, &params())
                    .expect("selected read replies")
                    .data
            })
            .collect();
        assert_eq!(reads, vec![0xDE, 0xAD, 0xBE, 0xEF]);
    }

    #[test]
    fn stream_fifo_pops_without_autoincrement() {
        let mut dev = slave(1);
        let t = SimTime::from_nanos(10);
        dev.push_outbound([10, 20, 30]);
        assert!(dev.pending_interrupt(), "outbound bytes raise INT");
        select(&mut dev, 1, false, t);
        dev.on_tx(
            &TxFrame::new(Command::SetPointer, STREAM_ADDR),
            0,
            t,
            &params(),
        );
        let mut reads = Vec::new();
        for i in 0..3u8 {
            // Stream reads must alternate the DATA[0] toggle to pop fresh
            // bytes (alternating-bit read port).
            let r = dev
                .on_tx(&TxFrame::new(Command::ReadData, i & 1), 0, t, &params())
                .expect("read replies");
            assert_eq!(r.rtype, RxType::Data);
            reads.push(r.data);
        }
        assert_eq!(reads, vec![10, 20, 30]);
        assert!(!dev.pending_interrupt(), "drained queue clears INT");
        // A repeated toggle is a retry: it returns the latched byte again.
        let r = dev
            .on_tx(&TxFrame::new(Command::ReadData, 0), 0, t, &params())
            .expect("read replies");
        assert_eq!(r.data, 30, "same toggle replays the latched byte");
        // A fresh toggle on an empty FIFO underflows to 0.
        let r = dev
            .on_tx(&TxFrame::new(Command::ReadData, 1), 0, t, &params())
            .expect("read replies");
        assert_eq!(r.data, 0);
    }

    #[test]
    fn stream_fifo_accepts_inbound_writes() {
        let mut dev = slave(1);
        let t = SimTime::from_nanos(10);
        select(&mut dev, 1, false, t);
        dev.on_tx(
            &TxFrame::new(Command::SetPointer, STREAM_ADDR),
            0,
            t,
            &params(),
        );
        for byte in [1, 2, 3] {
            dev.on_tx(&TxFrame::new(Command::WriteData, byte), 0, t, &params());
        }
        assert_eq!(dev.inbound_len(), 3);
        assert_eq!(dev.take_inbound(), vec![1, 2, 3]);
        assert_eq!(dev.inbound_len(), 0);
    }

    #[test]
    fn system_space_reaches_registers() {
        let mut dev = slave(1);
        let t = SimTime::from_nanos(10);
        select(&mut dev, 1, true, t);
        dev.on_tx(
            &TxFrame::new(Command::SetPointer, SystemReg::DmaCounter.offset()),
            0,
            t,
            &params(),
        );
        dev.on_tx(&TxFrame::new(Command::WriteData, 42), 0, t, &params());
        dev.on_tx(
            &TxFrame::new(Command::SetPointer, SystemReg::DmaCounter.offset()),
            0,
            t,
            &params(),
        );
        let r = dev
            .on_tx(&TxFrame::new(Command::ReadData, 0), 0, t, &params())
            .expect("read replies");
        assert_eq!(r.data, 42);
    }

    #[test]
    fn read_flags_reports_stream_state() {
        let mut dev = slave(1);
        let t = SimTime::from_nanos(10);
        select(&mut dev, 1, false, t);
        let r = dev
            .on_tx(&TxFrame::new(Command::ReadFlags, 0), 0, t, &params())
            .expect("flags reply");
        assert_eq!(r.rtype, RxType::Flags);
        assert_eq!(r.data, 0);
        dev.push_outbound([9]);
        let r = dev
            .on_tx(&TxFrame::new(Command::ReadFlags, 0), 0, t, &params())
            .expect("flags reply");
        assert_eq!(r.data & 0b101, 0b101, "INT + outbound bits set");
    }

    #[test]
    fn write_command_clears_interrupt_latch() {
        let mut dev = slave(1);
        let t = SimTime::from_nanos(10);
        dev.raise_interrupt();
        assert!(dev.pending_interrupt());
        select(&mut dev, 1, false, t);
        dev.on_tx(&TxFrame::new(Command::WriteCommand, 0x01), 0, t, &params());
        assert!(!dev.pending_interrupt());
    }

    #[test]
    fn idle_slave_resets_after_2048_bit_periods() {
        let mut dev = slave(1);
        let p = params();
        let t0 = SimTime::from_nanos(100);
        select(&mut dev, 1, false, t0);
        dev.on_tx(&TxFrame::new(Command::SetPointer, 0x20), 0, t0, &p);
        // Arrive shortly after the reset fires: the slave is mid-reset and
        // ignores the frame.
        let during_reset = t0 + p.reset_timeout() + p.bits_to_time(5);
        let reply = dev.on_tx(&TxFrame::new(Command::Status, 0), 0, during_reset, &p);
        assert!(reply.is_none(), "slave in reset ignores frames");
        assert_eq!(dev.reset_count(), 1);
        // After the 33-bit reset pulse, the slave is alive but deselected.
        let after = during_reset + p.reset_active();
        let reply = dev.on_tx(&TxFrame::new(Command::Status, 0), 0, after, &p);
        assert!(reply.is_none(), "reset cleared the selection");
        let reply = select(&mut dev, 1, false, after + p.bits_to_time(1));
        assert!(reply.is_some(), "reselect succeeds after reset");
        assert_eq!(dev.reset_count(), 1, "no second reset while traffic flows");
    }

    #[test]
    fn steady_traffic_prevents_reset() {
        let mut dev = slave(1);
        let p = params();
        let mut t = SimTime::from_nanos(100);
        select(&mut dev, 1, false, t);
        for _ in 0..10 {
            t = t + p.reset_timeout() - SimDuration::from_nanos(1);
            let reply = dev.on_tx(&TxFrame::new(Command::Status, 0), 0, t, &p);
            assert!(reply.is_some(), "slave alive at {t}");
        }
        assert_eq!(dev.reset_count(), 0);
    }

    #[test]
    #[should_panic(expected = "broadcast node id cannot be instantiated")]
    fn broadcast_device_rejected() {
        let _ = SlaveDevice::new(NodeId::BROADCAST);
    }
}
