//! Node addressing: 7-bit node ids (0–126), the broadcast node (127), the
//! two per-node address spaces, and the system register set.

use core::fmt;

/// Largest assignable node id; 127 is reserved for broadcast.
pub const MAX_NODE_ID: u8 = 126;

/// The raw id of the virtual broadcast node.
pub const BROADCAST_RAW: u8 = 127;

/// A validated TpWIRE node id.
///
/// Normal slaves are numbered 0–126; id 127 is the virtual *broadcast* node
/// that addresses all slaves simultaneously (broadcast commands elicit no RX
/// reply).
///
/// # Examples
///
/// ```
/// use tsbus_tpwire::NodeId;
///
/// let n = NodeId::new(5)?;
/// assert_eq!(n.raw(), 5);
/// assert!(!n.is_broadcast());
/// assert!(NodeId::BROADCAST.is_broadcast());
/// assert!(NodeId::new(200).is_err());
/// # Ok::<(), tsbus_tpwire::InvalidNodeId>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u8);

/// Error: a raw node id outside 0–127.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidNodeId(pub u8);

impl fmt::Display for InvalidNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node id {} out of range 0..=127", self.0)
    }
}

impl std::error::Error for InvalidNodeId {}

impl NodeId {
    /// The virtual broadcast node (id 127).
    pub const BROADCAST: NodeId = NodeId(BROADCAST_RAW);

    /// Validates a raw id.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidNodeId`] if `raw > 127`.
    pub fn new(raw: u8) -> Result<Self, InvalidNodeId> {
        if raw <= BROADCAST_RAW {
            Ok(NodeId(raw))
        } else {
            Err(InvalidNodeId(raw))
        }
    }

    /// The raw 7-bit id.
    #[must_use]
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// Whether this is the virtual broadcast node.
    #[must_use]
    pub const fn is_broadcast(self) -> bool {
        self.0 == BROADCAST_RAW
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_broadcast() {
            write!(f, "node[*]")
        } else {
            write!(f, "node[{}]", self.0)
        }
    }
}

impl TryFrom<u8> for NodeId {
    type Error = InvalidNodeId;

    fn try_from(raw: u8) -> Result<Self, Self::Error> {
        NodeId::new(raw)
    }
}

/// The two address spaces each node exposes.
///
/// The first node address reaches memory and memory-mapped I/O; the second
/// reaches the system register set (command, flags, DMA counter, SPI). In
/// our concretization the space is selected by `DATA[7]` of the `SelectNode`
/// command (see `DESIGN.md` §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AddressSpace {
    /// Memory and memory-mapped I/O registers.
    #[default]
    Memory,
    /// System registers: command, flags, DMA counter, SPI.
    System,
}

impl fmt::Display for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddressSpace::Memory => write!(f, "mem"),
            AddressSpace::System => write!(f, "sys"),
        }
    }
}

/// The system register set named by the specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemReg {
    /// Command register (written to trigger node-level actions).
    Command,
    /// Flags register (status bits; bit 0 mirrors the pending-interrupt
    /// flag in this model).
    Flags,
    /// DMA transfer counter (remaining bytes of a block transfer).
    DmaCounter,
    /// SPI data register (pass-through to the node's SPI peripheral).
    Spi,
}

impl SystemReg {
    /// All system registers in pointer order (the system address space is
    /// laid out `[Command, Flags, DmaCounter, Spi]` at offsets 0–3).
    pub const ALL: [SystemReg; 4] = [
        SystemReg::Command,
        SystemReg::Flags,
        SystemReg::DmaCounter,
        SystemReg::Spi,
    ];

    /// The register at pointer offset `offset & 0x3`.
    #[must_use]
    pub fn from_offset(offset: u8) -> SystemReg {
        Self::ALL[usize::from(offset & 0x3)]
    }

    /// The pointer offset of this register.
    #[must_use]
    pub fn offset(self) -> u8 {
        match self {
            SystemReg::Command => 0,
            SystemReg::Flags => 1,
            SystemReg::DmaCounter => 2,
            SystemReg::Spi => 3,
        }
    }
}

impl fmt::Display for SystemReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SystemReg::Command => "command",
            SystemReg::Flags => "flags",
            SystemReg::DmaCounter => "dma_counter",
            SystemReg::Spi => "spi",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_validate_range() {
        assert!(NodeId::new(0).is_ok());
        assert!(NodeId::new(126).is_ok());
        assert_eq!(NodeId::new(127), Ok(NodeId::BROADCAST));
        assert_eq!(NodeId::new(128), Err(InvalidNodeId(128)));
        assert_eq!(NodeId::new(255), Err(InvalidNodeId(255)));
    }

    #[test]
    fn broadcast_is_special() {
        assert!(NodeId::BROADCAST.is_broadcast());
        assert!(!NodeId::new(126).expect("valid").is_broadcast());
        assert_eq!(NodeId::BROADCAST.to_string(), "node[*]");
        assert_eq!(NodeId::new(9).expect("valid").to_string(), "node[9]");
    }

    #[test]
    fn try_from_matches_new() {
        assert_eq!(NodeId::try_from(5), NodeId::new(5));
        assert!(NodeId::try_from(200).is_err());
        let err = NodeId::try_from(200).expect_err("out of range");
        assert!(err.to_string().contains("200"));
    }

    #[test]
    fn system_registers_roundtrip_offsets() {
        for reg in SystemReg::ALL {
            assert_eq!(SystemReg::from_offset(reg.offset()), reg);
        }
        // Offsets wrap modulo 4.
        assert_eq!(SystemReg::from_offset(4), SystemReg::Command);
        assert_eq!(SystemReg::from_offset(7), SystemReg::Spi);
    }
}
