//! Wire configurations and bus timing parameters.
//!
//! §3.2 of the paper describes two ways to scale TpWIRE from 1 to *n* wires:
//!
//! 1. **Parallel data** (mode A): one line keeps carrying the command
//!    framing while the remaining `n − 1` lines carry the data bits in
//!    parallel, shortening each frame.
//! 2. **Parallel buses** (mode B): each line is an independent 1-wire bus,
//!    so `n` transactions proceed concurrently.
//!
//! [`Wiring`] captures the choice; [`BusParams`] bundles it with the
//! programmable bit rate and the protocol latencies, and provides all the
//! timing arithmetic shared by the analytic model and the discrete-event
//! model (keeping the two in agreement by construction where they should
//! agree, so validation tests exercise real behavioral differences only).
//!
//! # 1-wire vs *n*-wire, and what a lane is
//!
//! The two scaling modes differ in *where* the extra lines buy time back:
//!
//! * Mode A shortens every frame ([`Wiring::frame_bit_periods`] drops from
//!   16 toward the 8-bit framing floor) but the bus still serializes
//!   transactions — [`Wiring::lanes`] stays 1.
//! * Mode B keeps 16-bit frames but offers `buses` independent **lanes**:
//!   each lane is a complete 1-wire daisy chain with its own master
//!   transmitter, and slaves are striped across lanes round-robin.
//!
//! # Degraded-mode reassignment
//!
//! A mode-B bus can outlive a lane. When a lane's chain breaks, or the
//! supervision layer (see [`SupervisionConfig`]) has quarantined the
//! majority of a lane's slaves, the master *evacuates* the lane: every
//! slave currently assigned to it is reassigned round-robin across the
//! surviving lanes, and traffic for those slaves rides the survivors until
//! the lane is *restored*. [`WirePlan`] owns that assignment — it tracks
//! each chain position's home lane and current lane, performs deterministic
//! evacuation/restoration, and checks the conservation property the chaos
//! harness asserts: **no slave is ever lost or double-assigned by a
//! rebalance**. The analytic side of the same story lives in
//! [`degraded_load_factor`](crate::analytic::degraded_load_factor), which
//! predicts how much of the lost lane's traffic each survivor absorbs.

use core::fmt;

use tsbus_des::SimDuration;
use tsbus_faults::{BurstParams, RetryPolicy, SupervisionConfig};

use crate::frame::FRAME_BITS;

/// Slave reset timeout: a slave resets itself after this many bit periods
/// without a valid TX frame (specification value).
pub const RESET_TIMEOUT_BITS: u32 = 2048;

/// Once triggered, a slave's reset stays active this many bit periods
/// (specification value).
pub const RESET_ACTIVE_BITS: u32 = 33;

/// How the physical lines of a TpWIRE bus are organized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Wiring {
    /// The classic single-line bus.
    #[default]
    Single,
    /// Mode A: `lines` total lines (≥ 2); one command line plus
    /// `lines − 1` parallel data lines. Frames shorten; there is still one
    /// transaction in flight at a time.
    ParallelData {
        /// Total line count, command line included.
        lines: u8,
    },
    /// Mode B: `buses` independent 1-wire buses (≥ 1); transactions are
    /// striped across them.
    ParallelBuses {
        /// Number of independent buses.
        buses: u8,
    },
}

impl Wiring {
    /// Validated mode-A constructor.
    ///
    /// # Errors
    ///
    /// Returns an error message if `lines < 2` (mode A needs at least one
    /// data line besides the command line).
    pub fn parallel_data(lines: u8) -> Result<Wiring, InvalidWiring> {
        if lines >= 2 {
            Ok(Wiring::ParallelData { lines })
        } else {
            Err(InvalidWiring::TooFewLines(lines))
        }
    }

    /// Validated mode-B constructor.
    ///
    /// # Errors
    ///
    /// Returns an error if `buses == 0`.
    pub fn parallel_buses(buses: u8) -> Result<Wiring, InvalidWiring> {
        if buses >= 1 {
            Ok(Wiring::ParallelBuses { buses })
        } else {
            Err(InvalidWiring::ZeroBuses)
        }
    }

    /// How many independent transaction pipelines the configuration offers.
    #[must_use]
    pub fn lanes(self) -> u8 {
        match self {
            Wiring::Single | Wiring::ParallelData { .. } => 1,
            Wiring::ParallelBuses { buses } => buses,
        }
    }

    /// Bit periods one frame occupies on a lane.
    ///
    /// * `Single` / `ParallelBuses`: the full 16 bit periods.
    /// * `ParallelData { lines }`: the start bit plus the longer of the
    ///   serial framing portion (CMD/TYPE + CRC = 7 bits on the command
    ///   line) and the parallelized data portion (`⌈8 / (lines − 1)⌉`),
    ///   which run concurrently.
    #[must_use]
    pub fn frame_bit_periods(self) -> u32 {
        match self {
            Wiring::Single | Wiring::ParallelBuses { .. } => FRAME_BITS,
            Wiring::ParallelData { lines } => {
                let data_lanes = u32::from(lines) - 1;
                let data_bits = 8u32.div_ceil(data_lanes);
                1 + 7u32.max(data_bits)
            }
        }
    }

    /// Total physical line count.
    #[must_use]
    pub fn line_count(self) -> u8 {
        match self {
            Wiring::Single => 1,
            Wiring::ParallelData { lines } => lines,
            Wiring::ParallelBuses { buses } => buses,
        }
    }
}

impl fmt::Display for Wiring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Wiring::Single => write!(f, "1-wire"),
            Wiring::ParallelData { lines } => write!(f, "{lines}-wire (parallel data)"),
            Wiring::ParallelBuses { buses } => write!(f, "{buses}-wire (parallel buses)"),
        }
    }
}

/// Error: a wiring configuration with an impossible line count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidWiring {
    /// Mode A needs ≥ 2 lines.
    TooFewLines(u8),
    /// Mode B needs ≥ 1 bus.
    ZeroBuses,
}

impl fmt::Display for InvalidWiring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidWiring::TooFewLines(n) => {
                write!(f, "parallel-data wiring needs at least 2 lines, got {n}")
            }
            InvalidWiring::ZeroBuses => write!(f, "parallel-bus wiring needs at least 1 bus"),
        }
    }
}

impl std::error::Error for InvalidWiring {}

/// The full timing/behaviour parameter set of a TpWIRE bus.
///
/// All protocol latencies are expressed in *bit periods* of the programmed
/// bit rate, matching how the specification states them (e.g. the 2048-bit
/// reset timeout); [`bit_period`](BusParams::bit_period) converts to
/// simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusParams {
    /// Line bit rate in bits per second (the bus is speed-programmable; the
    /// Theseus default reaches 1 Mbyte/s ≈ 8 Mbit/s).
    pub bit_rate_hz: f64,
    /// Physical line organization.
    pub wiring: Wiring,
    /// Per-slave pass-through latency of the daisy chain, in bit periods.
    pub hop_delay_bits: u32,
    /// Slave processing time between the end of a TX frame and the start of
    /// its RX reply, in bit periods.
    pub turnaround_bits: u32,
    /// Idle gap the master leaves between transactions, in bit periods.
    pub gap_bits: u32,
    /// How long the master waits for an RX before declaring a timeout, in
    /// bit periods (measured from the end of the TX frame).
    pub response_timeout_bits: u32,
    /// Master retry policy: how many times each frame class is re-sent
    /// before signaling an error ("a predetermined number of times" in the
    /// specification), and how long the master backs off between resends.
    pub retry: RetryPolicy,
    /// Probability that any one frame (TX or RX) is corrupted in flight;
    /// 0.0 for an ideal channel. Independent per frame — layered on top of
    /// [`burst_error`](BusParams::burst_error) when both are set.
    pub frame_error_rate: f64,
    /// Optional Gilbert-Elliott burst error channel. When set, every frame
    /// additionally rolls against the channel's current state, so errors
    /// cluster instead of arriving uniformly.
    pub burst_error: Option<BurstParams>,
    /// Master policy: gap between idle keep-alive/discovery polls, in bit
    /// periods. Must stay well below [`RESET_TIMEOUT_BITS`] or idle slaves
    /// start resetting.
    pub idle_poll_bits: u32,
    /// Master policy: how many stream bytes are moved per relay service
    /// slot before the master re-arbitrates between flows. Small values
    /// favour fairness/latency, large values favour throughput.
    pub relay_chunk: u16,
    /// DMA block transfers: when nonzero, the master moves stream bytes in
    /// bursts of up to this many data frames per transaction (armed through
    /// the slave's DMA counter register) instead of one acknowledged frame
    /// per byte. Bursts cut the per-byte frame count roughly in half at the
    /// cost of coarser error recovery (a corrupted burst retries whole).
    /// `0` disables DMA.
    pub dma_block: u16,
    /// Optional supervision layer: per-slave health tracking, circuit
    /// breakers with fast-fail/probe semantics, and (on multi-lane
    /// wirings) degraded-mode rebalancing. `None` — the default — keeps
    /// the bus byte-identical to its unsupervised behaviour.
    pub supervision: Option<SupervisionConfig>,
}

impl BusParams {
    /// Parameters of the 1-wire Theseus configuration: 8 Mbit/s
    /// (≈ 1 Mbyte/s), 1-bit hop delay, 2-bit turnaround, 2-bit gap, 64-bit
    /// response timeout, 3 retries, ideal channel.
    #[must_use]
    pub fn theseus_default() -> Self {
        BusParams {
            bit_rate_hz: 8_000_000.0,
            wiring: Wiring::Single,
            hop_delay_bits: 1,
            turnaround_bits: 2,
            gap_bits: 2,
            response_timeout_bits: 64,
            retry: RetryPolicy::immediate(3),
            frame_error_rate: 0.0,
            burst_error: None,
            idle_poll_bits: 512,
            relay_chunk: 8,
            dma_block: 0,
            supervision: None,
        }
    }

    /// Returns a copy with DMA block transfers of up to `block` bytes
    /// (`0` disables DMA).
    #[must_use]
    pub fn with_dma_block(mut self, block: u16) -> Self {
        self.dma_block = block;
        self
    }

    /// Returns a copy with a different relay service-slot size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    #[must_use]
    pub fn with_relay_chunk(mut self, chunk: u16) -> Self {
        assert!(chunk > 0, "relay chunk must be at least one byte");
        self.relay_chunk = chunk;
        self
    }

    /// Returns a copy with a different wiring.
    #[must_use]
    pub fn with_wiring(mut self, wiring: Wiring) -> Self {
        self.wiring = wiring;
        self
    }

    /// Returns a copy with a different bit rate.
    ///
    /// # Panics
    ///
    /// Panics if `bit_rate_hz` is not positive and finite.
    #[must_use]
    pub fn with_bit_rate(mut self, bit_rate_hz: f64) -> Self {
        assert!(
            bit_rate_hz.is_finite() && bit_rate_hz > 0.0,
            "bit rate must be positive and finite"
        );
        self.bit_rate_hz = bit_rate_hz;
        self
    }

    /// Returns a copy with a different frame error rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is NaN or outside `[0, 1]`.
    #[must_use]
    pub fn with_frame_error_rate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "error rate must be in [0, 1] and not NaN, got {rate}"
        );
        self.frame_error_rate = rate;
        self
    }

    /// Returns a copy with a Gilbert-Elliott burst error channel layered on
    /// the line ([`BurstParams`] validates its own probabilities).
    #[must_use]
    pub fn with_burst_error(mut self, params: BurstParams) -> Self {
        self.burst_error = Some(params);
        self
    }

    /// Returns a copy with a different master retry policy.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Returns a copy with a uniform immediate-resend budget for every
    /// frame class (the historical `max_retries` knob).
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: u8) -> Self {
        self.retry = RetryPolicy::immediate(max_retries);
        self
    }

    /// Returns a copy with the supervision layer enabled under `cfg`
    /// (validated eagerly so a bad configuration fails at build time, not
    /// mid-simulation).
    #[must_use]
    pub fn with_supervision(mut self, cfg: SupervisionConfig) -> Self {
        self.supervision = Some(cfg.validated());
        self
    }

    /// Duration of one bit period.
    #[must_use]
    pub fn bit_period(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.bit_rate_hz)
    }

    /// Converts a bit-period count to simulated time.
    #[must_use]
    pub fn bits_to_time(&self, bits: u32) -> SimDuration {
        SimDuration::from_secs_f64(f64::from(bits) / self.bit_rate_hz)
    }

    /// Converts a wide bit-period count (e.g. an exponential-backoff delay)
    /// to simulated time.
    #[must_use]
    pub fn bits64_to_time(&self, bits: u64) -> SimDuration {
        SimDuration::from_secs_f64(bits as f64 / self.bit_rate_hz)
    }

    /// Duration of one frame on a lane under the current wiring.
    #[must_use]
    pub fn frame_time(&self) -> SimDuration {
        self.bits_to_time(self.wiring.frame_bit_periods())
    }

    /// Bit periods of a complete transaction with the slave at 1-based
    /// chain position `hops`: TX frame, chain traversal, turnaround, RX
    /// frame, chain traversal back, inter-transaction gap.
    #[must_use]
    pub fn transaction_bits(&self, hops: u32) -> u32 {
        let frame = self.wiring.frame_bit_periods();
        2 * frame + 2 * hops * self.hop_delay_bits + self.turnaround_bits + self.gap_bits
    }

    /// Duration of a complete transaction with the slave at chain position
    /// `hops`.
    #[must_use]
    pub fn transaction_time(&self, hops: u32) -> SimDuration {
        self.bits_to_time(self.transaction_bits(hops))
    }

    /// Duration of a broadcast transaction on a chain of `chain_len`
    /// slaves: one TX frame to the end of the chain, no RX, plus the gap.
    #[must_use]
    pub fn broadcast_time(&self, chain_len: u32) -> SimDuration {
        let bits =
            self.wiring.frame_bit_periods() + chain_len * self.hop_delay_bits + self.gap_bits;
        self.bits_to_time(bits)
    }

    /// Bit periods of one DMA burst transaction moving `k` stream bytes
    /// to/from the slave at 1-based chain position `hops`:
    ///
    /// * arming: 3 regular transactions (select system space, point at the
    ///   DMA counter, write the block length);
    /// * the burst proper: one command frame, `k` back-to-back data frames,
    ///   chain traversal, turnaround, and a single block acknowledge.
    #[must_use]
    pub fn dma_burst_bits(&self, k: u32, hops: u32) -> u32 {
        let frame = self.wiring.frame_bit_periods();
        let arming = 3 * self.transaction_bits(hops);
        arming
            + (k + 2) * frame // command + k data frames + 1 block ack
            + 2 * hops * self.hop_delay_bits
            + self.turnaround_bits
            + self.gap_bits
    }

    /// Duration of a `k`-byte DMA burst with the slave at position `hops`.
    #[must_use]
    pub fn dma_burst_time(&self, k: u32, hops: u32) -> SimDuration {
        self.bits_to_time(self.dma_burst_bits(k, hops))
    }

    /// How long the master waits for an RX frame before retrying.
    #[must_use]
    pub fn response_timeout(&self) -> SimDuration {
        self.bits_to_time(self.response_timeout_bits)
    }

    /// The slave self-reset timeout as a duration.
    #[must_use]
    pub fn reset_timeout(&self) -> SimDuration {
        self.bits_to_time(RESET_TIMEOUT_BITS)
    }

    /// The slave reset pulse length as a duration.
    #[must_use]
    pub fn reset_active(&self) -> SimDuration {
        self.bits_to_time(RESET_ACTIVE_BITS)
    }
}

impl Default for BusParams {
    fn default() -> Self {
        Self::theseus_default()
    }
}

/// Lane assignment of the slaves on a mode-B (parallel-bus) wiring, with
/// degraded-mode evacuation and restoration.
///
/// Each chain position has a **home lane** (`position mod lanes`, the
/// striping the bus starts with) and a **current lane**. Evacuating a lane
/// moves every slave currently on it round-robin across the surviving
/// lanes; restoring it sends its home slaves back. Both operations are
/// pure functions of the plan state — no randomness — so a replay
/// reproduces the same reassignments.
///
/// On a 1-lane plan every position lives on lane 0 and evacuation is
/// impossible (there is nowhere to go); [`evacuate`](WirePlan::evacuate)
/// returns an empty move list and leaves the plan untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePlan {
    lanes: u8,
    /// Home lane per 0-based chain position.
    home: Vec<u8>,
    /// Current lane per 0-based chain position.
    current: Vec<u8>,
    /// Which lanes are currently evacuated.
    evacuated: Vec<bool>,
}

impl WirePlan {
    /// The initial striped assignment: position `i` homes on lane
    /// `i % lanes`.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    #[must_use]
    pub fn striped(lanes: u8, slaves: usize) -> Self {
        assert!(lanes > 0, "a wire plan needs at least one lane");
        let home: Vec<u8> = (0..slaves)
            .map(|i| (i % usize::from(lanes)) as u8)
            .collect();
        WirePlan {
            lanes,
            current: home.clone(),
            home,
            evacuated: vec![false; usize::from(lanes)],
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> u8 {
        self.lanes
    }

    /// Number of chain positions covered.
    #[must_use]
    pub fn positions(&self) -> usize {
        self.home.len()
    }

    /// The lane position `pos` is currently served on.
    #[must_use]
    pub fn lane_of(&self, pos: usize) -> u8 {
        self.current[pos]
    }

    /// The lane position `pos` homes on.
    #[must_use]
    pub fn home_lane_of(&self, pos: usize) -> u8 {
        self.home[pos]
    }

    /// Whether `lane` is currently evacuated.
    #[must_use]
    pub fn is_evacuated(&self, lane: u8) -> bool {
        self.evacuated[usize::from(lane)]
    }

    /// Whether any lane is currently evacuated (the bus is in degraded
    /// mode).
    #[must_use]
    pub fn any_evacuated(&self) -> bool {
        self.evacuated.iter().any(|&e| e)
    }

    /// Evacuates `lane`: every position currently on it is reassigned
    /// round-robin (ascending position, ascending surviving lane) across
    /// the lanes that are neither `lane` nor already evacuated. Returns the
    /// `(position, new_lane)` moves, empty — with the plan untouched — when
    /// no survivor exists or the lane is already evacuated.
    pub fn evacuate(&mut self, lane: u8) -> Vec<(usize, u8)> {
        if self.is_evacuated(lane) {
            return Vec::new();
        }
        let survivors: Vec<u8> = (0..self.lanes)
            .filter(|&l| l != lane && !self.is_evacuated(l))
            .collect();
        if survivors.is_empty() {
            return Vec::new();
        }
        self.evacuated[usize::from(lane)] = true;
        let mut moves = Vec::new();
        let mut next = 0usize;
        for pos in 0..self.current.len() {
            if self.current[pos] == lane {
                let target = survivors[next % survivors.len()];
                next += 1;
                self.current[pos] = target;
                moves.push((pos, target));
            }
        }
        moves
    }

    /// Restores `lane`: it stops being evacuated and every position homed
    /// on it returns there. Positions homed on *other* (still-evacuated)
    /// lanes keep their current assignment. Returns the `(position, lane)`
    /// moves; empty if `lane` was not evacuated.
    pub fn restore(&mut self, lane: u8) -> Vec<(usize, u8)> {
        if !self.is_evacuated(lane) {
            return Vec::new();
        }
        self.evacuated[usize::from(lane)] = false;
        let mut moves = Vec::new();
        for pos in 0..self.current.len() {
            if self.home[pos] == lane && self.current[pos] != lane {
                self.current[pos] = lane;
                moves.push((pos, lane));
            }
        }
        moves
    }

    /// The conservation invariant the chaos harness asserts after every
    /// rebalance: every position is assigned to exactly one valid,
    /// non-evacuated lane, and positions on healthy home lanes were not
    /// gratuitously moved.
    #[must_use]
    pub fn conserves_assignment(&self) -> bool {
        self.current.iter().enumerate().all(|(pos, &lane)| {
            lane < self.lanes
                && !self.is_evacuated(lane)
                && (self.is_evacuated(self.home[pos]) || lane == self.home[pos])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_wire_frames_are_16_bits() {
        assert_eq!(Wiring::Single.frame_bit_periods(), 16);
        assert_eq!(Wiring::Single.lanes(), 1);
        assert_eq!(Wiring::Single.line_count(), 1);
    }

    #[test]
    fn parallel_data_shortens_frames_toward_a_floor() {
        let w2 = Wiring::parallel_data(2).expect("valid");
        let w3 = Wiring::parallel_data(3).expect("valid");
        let w9 = Wiring::parallel_data(9).expect("valid");
        assert_eq!(w2.frame_bit_periods(), 9); // 1 + max(7, 8)
        assert_eq!(w3.frame_bit_periods(), 8); // 1 + max(7, 4)
        assert_eq!(w9.frame_bit_periods(), 8); // data fully parallel, framing floor
        assert_eq!(w2.lanes(), 1);
    }

    #[test]
    fn parallel_buses_scale_lanes_not_frames() {
        let w = Wiring::parallel_buses(4).expect("valid");
        assert_eq!(w.frame_bit_periods(), 16);
        assert_eq!(w.lanes(), 4);
        assert_eq!(w.line_count(), 4);
    }

    #[test]
    fn invalid_wirings_are_rejected() {
        assert_eq!(Wiring::parallel_data(1), Err(InvalidWiring::TooFewLines(1)));
        assert_eq!(Wiring::parallel_buses(0), Err(InvalidWiring::ZeroBuses));
    }

    #[test]
    fn theseus_bit_period_is_125ns() {
        let p = BusParams::theseus_default();
        assert_eq!(p.bit_period(), SimDuration::from_nanos(125));
        assert_eq!(p.bits_to_time(16), SimDuration::from_nanos(2000));
    }

    #[test]
    fn transaction_time_accounts_for_chain_position() {
        let p = BusParams::theseus_default();
        // 2 frames (32) + 2 hops×1×2 + turnaround 2 + gap 2 = 40 bits.
        assert_eq!(p.transaction_bits(2), 40);
        assert_eq!(p.transaction_time(2), SimDuration::from_nanos(40 * 125));
        // Farther slaves cost strictly more.
        assert!(p.transaction_bits(5) > p.transaction_bits(1));
    }

    #[test]
    fn two_wire_transactions_are_faster_but_not_double() {
        let p1 = BusParams::theseus_default();
        let p2 = p1.with_wiring(Wiring::parallel_data(2).expect("valid"));
        let t1 = p1.transaction_bits(1) as f64;
        let t2 = p2.transaction_bits(1) as f64;
        let speedup = t1 / t2;
        assert!(
            (1.2..2.0).contains(&speedup),
            "mode-A speedup {speedup} out of expected band"
        );
    }

    #[test]
    fn broadcast_has_no_reply_leg() {
        let p = BusParams::theseus_default();
        // 1 frame (16) + 3 hops + gap 2 = 21 bits.
        assert_eq!(p.broadcast_time(3), SimDuration::from_nanos(21 * 125));
        assert!(p.broadcast_time(3) < p.transaction_time(3));
    }

    #[test]
    fn reset_constants_match_spec() {
        let p = BusParams::theseus_default().with_bit_rate(1000.0);
        assert_eq!(p.reset_timeout(), SimDuration::from_secs_f64(2.048));
        assert_eq!(p.reset_active(), SimDuration::from_secs_f64(0.033));
    }

    #[test]
    fn builder_style_updates_compose() {
        let p = BusParams::theseus_default()
            .with_bit_rate(256.0)
            .with_wiring(Wiring::parallel_buses(2).expect("valid"))
            .with_frame_error_rate(0.01);
        assert_eq!(p.bit_rate_hz, 256.0);
        assert_eq!(p.wiring.lanes(), 2);
        assert_eq!(p.frame_error_rate, 0.01);
    }

    #[test]
    #[should_panic(expected = "error rate must be in")]
    fn error_rate_validated() {
        let _ = BusParams::theseus_default().with_frame_error_rate(1.5);
    }

    #[test]
    #[should_panic(expected = "error rate must be in")]
    fn error_rate_rejects_nan() {
        let _ = BusParams::theseus_default().with_frame_error_rate(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "error rate must be in")]
    fn error_rate_rejects_negative() {
        let _ = BusParams::theseus_default().with_frame_error_rate(-0.5);
    }

    #[test]
    fn fault_knobs_default_off_and_compose() {
        use tsbus_faults::{Backoff, FrameClass, RetryParams};

        let p = BusParams::theseus_default();
        assert_eq!(p.burst_error, None);
        assert_eq!(p.retry, RetryPolicy::immediate(3));

        let burst = BurstParams::with_mean_lengths(100.0, 10.0, 0.0, 0.5);
        let retry = RetryPolicy::uniform(RetryParams {
            max_retries: 5,
            backoff: Backoff::Exponential {
                base_bits: 32,
                cap_bits: 1024,
            },
        });
        let p = p.with_burst_error(burst).with_retry_policy(retry);
        assert_eq!(p.burst_error, Some(burst));
        assert_eq!(p.retry.for_class(FrameClass::StreamRead).max_retries, 5);

        let p = p.with_max_retries(7);
        assert_eq!(p.retry, RetryPolicy::immediate(7));
    }

    #[test]
    fn dma_burst_timing_components() {
        let p = BusParams::theseus_default();
        // Arming = 3 transactions at hop 1 (38 bits each), burst = cmd +
        // k data + ack frames (16 bits each) + 2 hops + turnaround + gap.
        let k = 8;
        let expected = 3 * p.transaction_bits(1) + (k + 2) * 16 + 2 + 2 + 2;
        assert_eq!(p.dma_burst_bits(k, 1), expected);
        // A burst always beats k acknowledged per-byte transactions for
        // reasonable k.
        assert!(p.dma_burst_bits(8, 1) < 8 * p.transaction_bits(1));
    }

    #[test]
    fn wire_plan_stripes_and_evacuates_round_robin() {
        let mut plan = WirePlan::striped(3, 7);
        assert_eq!(plan.lanes(), 3);
        assert_eq!(plan.positions(), 7);
        // Striping: 0,1,2,0,1,2,0.
        assert_eq!(plan.lane_of(0), 0);
        assert_eq!(plan.lane_of(4), 1);
        assert!(plan.conserves_assignment());
        assert!(!plan.any_evacuated());

        // Evacuating lane 1 moves positions 1 and 4 across lanes {0, 2}.
        let moves = plan.evacuate(1);
        assert_eq!(moves, vec![(1, 0), (4, 2)]);
        assert!(plan.is_evacuated(1));
        assert!(plan.any_evacuated());
        assert!(plan.conserves_assignment());
        // Healthy lanes keep their home slaves.
        assert_eq!(plan.lane_of(3), 0);
        assert_eq!(plan.lane_of(5), 2);

        // Re-evacuating is a no-op; restoring sends them home.
        assert!(plan.evacuate(1).is_empty());
        let back = plan.restore(1);
        assert_eq!(back, vec![(1, 1), (4, 1)]);
        assert_eq!(plan, WirePlan::striped(3, 7));
    }

    #[test]
    fn wire_plan_cascaded_evacuation_conserves_assignment() {
        let mut plan = WirePlan::striped(3, 6);
        plan.evacuate(0);
        // Lane 1 now carries a refugee from lane 0; evacuating it moves
        // everything currently on it (home slaves and refugees) to lane 2.
        let moves = plan.evacuate(1);
        assert!(moves.iter().all(|&(_, lane)| lane == 2));
        assert!(plan.conserves_assignment());
        for pos in 0..plan.positions() {
            assert_eq!(plan.lane_of(pos), 2);
        }
        // Restoring lane 0 pulls its home slaves back; lane 1's stay put.
        plan.restore(0);
        assert!(plan.conserves_assignment());
        assert_eq!(plan.lane_of(0), 0);
        assert_eq!(plan.lane_of(1), 2, "lane 1 is still evacuated");
    }

    #[test]
    fn single_lane_plan_cannot_evacuate() {
        let mut plan = WirePlan::striped(1, 4);
        assert!(plan.evacuate(0).is_empty());
        assert!(!plan.is_evacuated(0));
        assert!(plan.conserves_assignment());
    }

    #[test]
    fn supervision_knob_defaults_off_and_composes() {
        let p = BusParams::theseus_default();
        assert_eq!(p.supervision, None);
        let p = p.with_supervision(SupervisionConfig::conservative());
        assert_eq!(p.supervision, Some(SupervisionConfig::conservative()));
    }

    #[test]
    fn wiring_displays_are_informative() {
        assert_eq!(Wiring::Single.to_string(), "1-wire");
        assert_eq!(
            Wiring::parallel_data(2).expect("valid").to_string(),
            "2-wire (parallel data)"
        );
        assert_eq!(
            Wiring::parallel_buses(3).expect("valid").to_string(),
            "3-wire (parallel buses)"
        );
    }
}
