//! The bus master's supervision state: one circuit breaker per slave plus
//! the lane plan for degraded-mode rebalancing.
//!
//! [`Supervisor`] is pure bookkeeping — it owns the
//! [`CircuitBreaker`]s and the [`WirePlan`] and computes what *changed*
//! (transitions, quarantine spans, rebalances); the bus translates those
//! effects into metrics and trace events through its
//! [`BusInstruments`](crate::instrument::BusInstruments). Keeping the two
//! apart keeps the supervisor deterministic and independently testable:
//! it draws no randomness and touches no registry.
//!
//! Policy decisions encoded here:
//!
//! * A slave's **quarantine span** runs from the trip (entering Open) to
//!   readmission (entering Closed) — Half-Open probation counts as
//!   quarantine, since regular traffic is still fenced off.
//! * A lane is **evacuated** when more than half of the positions it
//!   currently serves are Open (and another live lane exists); it is
//!   **restored** once every position homed on it is Closed again. The
//!   asymmetry is deliberate hysteresis: one flapping slave must not
//!   bounce the whole lane's assignment.

use tsbus_des::{SimDuration, SimTime};
use tsbus_faults::{Admission, BreakerState, CircuitBreaker, SupervisionConfig, Transition};

use crate::wiring::WirePlan;

/// What one recorded outcome changed, for the bus to book into its
/// instruments.
#[derive(Debug, Default)]
pub(crate) struct OutcomeEffects {
    /// The breaker transition, if the outcome caused one.
    pub transition: Option<Transition>,
    /// A quarantine span that just closed (trip → readmission).
    pub quarantine_closed: Option<SimDuration>,
    /// Rebalances performed: `(lane, slaves moved, restored)`.
    pub rebalances: Vec<(u8, u8, bool)>,
    /// A degraded-mode span that just closed (first evacuation → last
    /// restoration).
    pub degraded_closed: Option<SimDuration>,
}

/// Per-slave breakers plus the lane plan; see the module docs.
#[derive(Debug)]
pub(crate) struct Supervisor {
    breakers: Vec<CircuitBreaker>,
    plan: WirePlan,
    /// Quarantine start per position (set on trip, cleared on readmission).
    open_since: Vec<Option<SimTime>>,
    /// When the bus entered degraded mode (first lane evacuated).
    degraded_since: Option<SimTime>,
}

impl Supervisor {
    pub(crate) fn new(
        cfg: SupervisionConfig,
        open_period: SimDuration,
        lanes: u8,
        slaves: usize,
    ) -> Self {
        Supervisor {
            breakers: (0..slaves)
                .map(|_| CircuitBreaker::new(cfg, open_period))
                .collect(),
            plan: WirePlan::striped(lanes, slaves),
            open_since: vec![None; slaves],
            degraded_since: None,
        }
    }

    /// The breaker state of the slave at chain position `pos`.
    pub(crate) fn state(&self, pos: usize) -> BreakerState {
        self.breakers[pos].state()
    }

    /// Whether regular (non-probe) traffic for `pos` must fail fast:
    /// quarantine fences jobs off through Half-Open probation too.
    pub(crate) fn quarantined(&self, pos: usize) -> bool {
        self.breakers[pos].state() != BreakerState::Closed
    }

    /// The lane currently responsible for polling position `pos`.
    pub(crate) fn poll_lane_of(&self, pos: usize) -> u8 {
        self.plan.lane_of(pos)
    }

    /// The rebalancing conservation invariant (see
    /// [`WirePlan::conserves_assignment`]).
    pub(crate) fn conserves_assignment(&self) -> bool {
        self.plan.conserves_assignment()
    }

    /// Whether any lane is currently evacuated.
    pub(crate) fn degraded(&self) -> bool {
        self.plan.any_evacuated()
    }

    /// When `pos`'s current quarantine span started, if it is in one.
    pub(crate) fn quarantined_since(&self, pos: usize) -> Option<SimTime> {
        self.open_since[pos]
    }

    /// Consults `pos`'s breaker before a keep-alive poll at `now`. A
    /// returned transition (Open → Half-Open when the quarantine window
    /// expired) must be booked by the caller.
    pub(crate) fn admit_poll(
        &mut self,
        now: SimTime,
        pos: usize,
    ) -> (Admission, Option<Transition>) {
        self.breakers[pos].admit(now)
    }

    /// Feeds one transaction outcome for `pos` and computes the fallout:
    /// breaker transition, quarantine-span closure, lane evacuations or
    /// restorations, and degraded-span closure.
    pub(crate) fn record(&mut self, now: SimTime, pos: usize, ok: bool) -> OutcomeEffects {
        let mut effects = OutcomeEffects::default();
        let Some(transition) = self.breakers[pos].record(now, ok) else {
            return effects;
        };
        effects.transition = Some(transition);
        match transition.to {
            BreakerState::Open => {
                // A Half-Open → Open re-trip extends the existing span.
                if self.open_since[pos].is_none() {
                    self.open_since[pos] = Some(now);
                }
                self.maybe_evacuate(now, pos, &mut effects);
            }
            BreakerState::Closed => {
                effects.quarantine_closed = self.open_since[pos]
                    .take()
                    .map(|since| now.saturating_duration_since(since));
                self.maybe_restore(now, &mut effects);
            }
            BreakerState::HalfOpen => {}
        }
        effects
    }

    /// Evacuates `pos`'s lane if its Open positions now form a majority
    /// and a live lane remains to absorb them.
    fn maybe_evacuate(&mut self, now: SimTime, pos: usize, effects: &mut OutcomeEffects) {
        let lane = self.plan.lane_of(pos);
        if self.plan.lanes() < 2 || self.plan.is_evacuated(lane) {
            return;
        }
        let (mut total, mut open) = (0u32, 0u32);
        for p in 0..self.plan.positions() {
            if self.plan.lane_of(p) == lane {
                total += 1;
                if self.breakers[p].state() == BreakerState::Open {
                    open += 1;
                }
            }
        }
        if 2 * open > total {
            let moves = self.plan.evacuate(lane);
            if !moves.is_empty() {
                effects.rebalances.push((lane, moves.len() as u8, false));
                if self.degraded_since.is_none() {
                    self.degraded_since = Some(now);
                }
            }
        }
    }

    /// Restores every evacuated lane whose home slaves are all Closed
    /// again, closing the degraded span when the last one comes back.
    fn maybe_restore(&mut self, now: SimTime, effects: &mut OutcomeEffects) {
        for lane in 0..self.plan.lanes() {
            if !self.plan.is_evacuated(lane) {
                continue;
            }
            let all_home_closed = (0..self.plan.positions())
                .filter(|&p| self.plan.home_lane_of(p) == lane)
                .all(|p| self.breakers[p].state() == BreakerState::Closed);
            if all_home_closed {
                let moves = self.plan.restore(lane);
                effects.rebalances.push((lane, moves.len() as u8, true));
            }
        }
        if !self.plan.any_evacuated() {
            if let Some(since) = self.degraded_since.take() {
                effects.degraded_closed = Some(now.saturating_duration_since(since));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn supervisor(lanes: u8, slaves: usize) -> Supervisor {
        Supervisor::new(
            SupervisionConfig::conservative(),
            SimDuration::from_micros(512),
            lanes,
            slaves,
        )
    }

    fn trip(sup: &mut Supervisor, pos: usize, now: SimTime) -> OutcomeEffects {
        let mut last = OutcomeEffects::default();
        for _ in 0..4 {
            last = sup.record(now, pos, false);
        }
        assert_eq!(sup.state(pos), BreakerState::Open);
        last
    }

    #[test]
    fn tripping_a_minority_does_not_rebalance() {
        let mut sup = supervisor(2, 4); // lane 0: {0, 2}, lane 1: {1, 3}
        let effects = trip(&mut sup, 1, SimTime::ZERO);
        assert_eq!(effects.transition.map(|t| t.to), Some(BreakerState::Open));
        assert!(effects.rebalances.is_empty(), "1 of 2 is not a majority");
        assert!(!sup.degraded());
        assert!(sup.conserves_assignment());
    }

    #[test]
    fn majority_open_evacuates_and_full_recovery_restores() {
        let mut sup = supervisor(2, 4);
        let t0 = SimTime::ZERO;
        trip(&mut sup, 1, t0);
        let effects = trip(&mut sup, 3, t0);
        // Both of lane 1's positions are Open: evacuate to lane 0.
        assert_eq!(effects.rebalances, vec![(1, 2, false)]);
        assert!(sup.degraded());
        assert_eq!(sup.poll_lane_of(1), 0);
        assert_eq!(sup.poll_lane_of(3), 0);
        assert!(sup.conserves_assignment());

        // Readmit both through Half-Open probes; only the second
        // readmission restores the lane and closes the degraded span.
        let later = t0 + SimDuration::from_micros(512);
        for (i, pos) in [1usize, 3].into_iter().enumerate() {
            let (adm, tr) = sup.admit_poll(later, pos);
            assert_eq!(adm, Admission::Probe);
            assert_eq!(tr.map(|t| t.to), Some(BreakerState::HalfOpen));
            sup.record(later, pos, true);
            let (adm, _) = sup.admit_poll(later, pos);
            assert_eq!(adm, Admission::Probe);
            let effects = sup.record(later, pos, true);
            assert_eq!(sup.state(pos), BreakerState::Closed);
            assert_eq!(
                effects.quarantine_closed,
                Some(SimDuration::from_micros(512))
            );
            if i == 0 {
                assert!(effects.rebalances.is_empty());
                assert!(effects.degraded_closed.is_none());
            } else {
                assert_eq!(effects.rebalances, vec![(1, 2, true)]);
                assert_eq!(effects.degraded_closed, Some(SimDuration::from_micros(512)));
            }
        }
        assert!(!sup.degraded());
        assert_eq!(sup.poll_lane_of(1), 1);
        assert!(sup.conserves_assignment());
    }

    #[test]
    fn single_lane_never_rebalances_but_still_quarantines() {
        let mut sup = supervisor(1, 3);
        let effects = trip(&mut sup, 0, SimTime::ZERO);
        assert!(effects.rebalances.is_empty());
        assert!(!sup.degraded());
        assert!(sup.quarantined(0));
        assert!(!sup.quarantined(1));
        assert!(sup.conserves_assignment());
    }

    #[test]
    fn half_open_retrip_extends_the_quarantine_span() {
        let mut sup = supervisor(1, 1);
        let t0 = SimTime::ZERO;
        trip(&mut sup, 0, t0);
        assert_eq!(sup.quarantined_since(0), Some(t0));
        let probe_at = t0 + SimDuration::from_micros(512);
        let (adm, _) = sup.admit_poll(probe_at, 0);
        assert_eq!(adm, Admission::Probe);
        let effects = sup.record(probe_at, 0, false);
        assert_eq!(effects.transition.map(|t| t.to), Some(BreakerState::Open));
        assert_eq!(sup.quarantined_since(0), Some(t0), "span is not restarted");
        assert!(effects.quarantine_closed.is_none());

        // Eventually readmitted: the span covers both Open windows.
        let retry_at = probe_at + SimDuration::from_micros(512);
        for _ in 0..2 {
            let (adm, _) = sup.admit_poll(retry_at, 0);
            assert_eq!(adm, Admission::Probe);
        }
        sup.record(retry_at, 0, true);
        let effects = sup.record(retry_at, 0, true);
        assert_eq!(
            effects.quarantine_closed,
            Some(SimDuration::from_micros(1024))
        );
    }
}
