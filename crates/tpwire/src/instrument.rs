//! Bus instrumentation: the [`TpWireBus`](crate::TpWireBus) master's
//! metrics registry and typed trace emission, split out of the bus state
//! machine.
//!
//! All counting the bus does goes through [`BusInstruments`]: one
//! [`Registry`] holding the scoped instruments (`txn/total`,
//! `retry/control`, `lane/0/busy`, ...) plus a [`Tracer`] of
//! [`TraceEvent`]s. The legacy [`BusStats`] struct survives as a by-value
//! view assembled from the registry — there is exactly one counting path.

use tsbus_des::{SimDuration, SimTime};
use tsbus_faults::{BreakerState, FaultKind, FrameClass};
use tsbus_obs::{BusyId, CounterId, Registry, Snapshot, TraceEvent, Tracer};

/// Aggregate bus statistics, read back from the registry.
///
/// Equality is derived so two same-seed runs can be compared byte for byte
/// (the determinism contract of the fault-injection layer).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Completed transactions (including polls; excluding retries).
    pub transactions: u64,
    /// Re-sent transactions (timeout or corrupted frame), all classes.
    pub retries: u64,
    /// Retries of control frames (selection, pointers, commands, polls).
    pub control_retries: u64,
    /// Retries of stream-FIFO reads (including DMA read bursts).
    pub stream_read_retries: u64,
    /// Retries of stream-FIFO writes (including DMA write bursts).
    pub stream_write_retries: u64,
    /// Retries that waited out a backoff delay before resending.
    pub backoff_events: u64,
    /// Total bit periods spent waiting in retry backoff.
    pub backoff_bits: u64,
    /// Transactions abandoned after exhausting retries.
    pub failures: u64,
    /// Keep-alive/discovery polls issued.
    pub polls: u64,
    /// Stream payload bytes fully relayed to their destination.
    pub bytes_relayed: u64,
    /// Stream messages fully relayed.
    pub messages_relayed: u64,
    /// Stream messages abandoned.
    pub messages_failed: u64,
    /// Deliveries dropped because the destination had no attachment.
    pub dropped_deliveries: u64,
    /// Fault commands applied (crash/revive/reset/break/heal).
    pub faults_injected: u64,
    /// Requests failed fast against an Open circuit breaker (supervision
    /// only; zero when supervision is off).
    pub fast_fails: u64,
    /// Probe frames issued to Half-Open slaves.
    pub probes: u64,
    /// Circuit-breaker trips (transitions into Open).
    pub breaker_trips: u64,
    /// Circuit-breaker readmissions (transitions into Closed).
    pub breaker_readmissions: u64,
    /// Degraded-mode lane rebalances (evacuations and restorations).
    pub rebalances: u64,
    /// Supervision invariant violations: requests issued to an Open slave.
    /// Must stay zero; counted so the chaos harness can assert it.
    pub open_issues: u64,
}

/// The bus master's instrument set: registry handles for every counter the
/// bus maintains, per-lane busy-time accumulators, and the typed trace
/// ring.
#[derive(Debug)]
pub struct BusInstruments {
    registry: Registry,
    tracer: Tracer<TraceEvent>,
    txn_total: CounterId,
    txn_failures: CounterId,
    retry_total: CounterId,
    retry_control: CounterId,
    retry_stream_read: CounterId,
    retry_stream_write: CounterId,
    backoff_events: CounterId,
    backoff_bits: CounterId,
    poll_total: CounterId,
    relay_bytes: CounterId,
    relay_messages: CounterId,
    relay_failed: CounterId,
    notify_dropped: CounterId,
    fault_injected: CounterId,
    lane_busy: Vec<BusyId>,
    /// Supervision instruments, registered lazily by
    /// [`enable_supervision`](BusInstruments::enable_supervision) so an
    /// unsupervised bus's registry (and hence its snapshots) stays
    /// byte-identical to the pre-supervision layout.
    supervise: Option<SuperviseIds>,
    /// Lazily registered `retry/clamped` warning counter — present only
    /// after a retry policy actually had to be clamped to the watchdog.
    retry_clamped: Option<CounterId>,
}

/// Registry handles for the supervision layer's counters and busy spans.
#[derive(Debug)]
struct SuperviseIds {
    fast_fails: CounterId,
    probes: CounterId,
    trips: CounterId,
    readmissions: CounterId,
    rebalances: CounterId,
    open_issues: CounterId,
    /// Time the bus spent in degraded mode (at least one lane evacuated).
    degraded: BusyId,
    /// Per-slave (by 0-based chain position) time spent with the breaker
    /// Open — the complement of the slave's availability.
    slave_open: Vec<BusyId>,
}

impl BusInstruments {
    /// Creates the instrument set for a bus with `lanes` wire lanes.
    /// Tracing starts disabled; arm it with
    /// [`set_tracer`](BusInstruments::set_tracer).
    #[must_use]
    pub fn new(lanes: usize) -> Self {
        let mut registry = Registry::new();
        let txn_total = registry.counter("txn/total");
        let txn_failures = registry.counter("txn/failures");
        let retry_total = registry.counter("retry/total");
        let retry_control = registry.counter("retry/control");
        let retry_stream_read = registry.counter("retry/stream_read");
        let retry_stream_write = registry.counter("retry/stream_write");
        let backoff_events = registry.counter("backoff/events");
        let backoff_bits = registry.counter("backoff/bits");
        let poll_total = registry.counter("poll/total");
        let relay_bytes = registry.counter("relay/bytes");
        let relay_messages = registry.counter("relay/messages");
        let relay_failed = registry.counter("relay/failed");
        let notify_dropped = registry.counter("notify/dropped");
        let fault_injected = registry.counter("fault/injected");
        let lane_busy = (0..lanes)
            .map(|i| registry.busy_time(&format!("lane/{i}/busy")))
            .collect();
        BusInstruments {
            registry,
            tracer: Tracer::disabled(),
            txn_total,
            txn_failures,
            retry_total,
            retry_control,
            retry_stream_read,
            retry_stream_write,
            backoff_events,
            backoff_bits,
            poll_total,
            relay_bytes,
            relay_messages,
            relay_failed,
            notify_dropped,
            fault_injected,
            lane_busy,
            supervise: None,
            retry_clamped: None,
        }
    }

    /// Registers the supervision instrument set for `slaves` chain
    /// positions. Called once by the bus when supervision is configured;
    /// never called on an unsupervised bus, whose registry layout is
    /// thereby unchanged.
    pub fn enable_supervision(&mut self, slaves: usize) {
        let registry = &mut self.registry;
        let slave_open = (0..slaves)
            .map(|i| registry.busy_time(&format!("supervise/slave/{i}/open")))
            .collect();
        self.supervise = Some(SuperviseIds {
            fast_fails: registry.counter("supervise/fast_fails"),
            probes: registry.counter("supervise/probes"),
            trips: registry.counter("supervise/trips"),
            readmissions: registry.counter("supervise/readmissions"),
            rebalances: registry.counter("supervise/rebalances"),
            open_issues: registry.counter("supervise/open_issues"),
            degraded: registry.busy_time("supervise/degraded"),
            slave_open,
        });
    }

    /// Replaces the trace collector (e.g. with a bounded ring to start
    /// recording).
    pub fn set_tracer(&mut self, tracer: Tracer<TraceEvent>) {
        self.tracer = tracer;
    }

    /// The recorded trace events, oldest first.
    pub fn trace(&self) -> &Tracer<TraceEvent> {
        &self.tracer
    }

    /// Events evicted from a bounded trace ring so far.
    #[must_use]
    pub fn trace_dropped(&self) -> u64 {
        self.tracer.dropped()
    }

    /// The underlying registry (read-only; all updates go through the
    /// semantic methods).
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Captures the registry at `now`.
    #[must_use]
    pub fn snapshot(&self, now: SimTime) -> Snapshot {
        self.registry.snapshot(now)
    }

    /// The legacy aggregate view, assembled from the registry.
    #[must_use]
    pub fn stats(&self) -> BusStats {
        BusStats {
            transactions: self.registry.count(self.txn_total),
            retries: self.registry.count(self.retry_total),
            control_retries: self.registry.count(self.retry_control),
            stream_read_retries: self.registry.count(self.retry_stream_read),
            stream_write_retries: self.registry.count(self.retry_stream_write),
            backoff_events: self.registry.count(self.backoff_events),
            backoff_bits: self.registry.count(self.backoff_bits),
            failures: self.registry.count(self.txn_failures),
            polls: self.registry.count(self.poll_total),
            bytes_relayed: self.registry.count(self.relay_bytes),
            messages_relayed: self.registry.count(self.relay_messages),
            messages_failed: self.registry.count(self.relay_failed),
            dropped_deliveries: self.registry.count(self.notify_dropped),
            faults_injected: self.registry.count(self.fault_injected),
            fast_fails: self.supervised_count(|ids| ids.fast_fails),
            probes: self.supervised_count(|ids| ids.probes),
            breaker_trips: self.supervised_count(|ids| ids.trips),
            breaker_readmissions: self.supervised_count(|ids| ids.readmissions),
            rebalances: self.supervised_count(|ids| ids.rebalances),
            open_issues: self.supervised_count(|ids| ids.open_issues),
        }
    }

    fn supervised_count(&self, pick: impl Fn(&SuperviseIds) -> CounterId) -> u64 {
        self.supervise
            .as_ref()
            .map_or(0, |ids| self.registry.count(pick(ids)))
    }

    /// Books `n` completed transactions and emits one `Frame` event for
    /// the logical transaction they conclude (a DMA burst folds its arming
    /// transactions into `n`).
    pub fn txn_ok(&mut self, at: SimTime, node: u8, class: FrameClass, n: u64) {
        self.registry.add(self.txn_total, n);
        self.tracer.emit(TraceEvent::Frame {
            at,
            node,
            class: class.into(),
            ok: true,
        });
    }

    /// Books one retry in the aggregate and per-class counters.
    pub fn retry(&mut self, at: SimTime, node: u8, class: FrameClass) {
        self.registry.inc(self.retry_total);
        let per_class = match class {
            FrameClass::Control => self.retry_control,
            FrameClass::StreamRead => self.retry_stream_read,
            FrameClass::StreamWrite => self.retry_stream_write,
        };
        self.registry.inc(per_class);
        self.tracer.emit(TraceEvent::Retry {
            at,
            node,
            class: class.into(),
        });
    }

    /// Books one backoff wait of `bits` bit periods.
    pub fn backoff(&mut self, at: SimTime, bits: u64) {
        self.registry.inc(self.backoff_events);
        self.registry.add(self.backoff_bits, bits);
        self.tracer.emit(TraceEvent::Backoff { at, bits });
    }

    /// Books a transaction abandoned after exhausting retries.
    pub fn txn_failed(&mut self, at: SimTime, node: u8) {
        self.registry.inc(self.txn_failures);
        self.tracer.emit(TraceEvent::TxnFailed { at, node });
    }

    /// Books one keep-alive/discovery poll.
    pub fn poll(&mut self) {
        self.registry.inc(self.poll_total);
    }

    /// Books a stream message fully relayed to its destination.
    pub fn message_relayed(&mut self, bytes: u64) {
        self.registry.add(self.relay_bytes, bytes);
        self.registry.inc(self.relay_messages);
    }

    /// Books a stream message abandoned.
    pub fn message_failed(&mut self) {
        self.registry.inc(self.relay_failed);
    }

    /// Books a delivery dropped for lack of an attachment.
    pub fn delivery_dropped(&mut self, at: SimTime, node: u8) {
        self.registry.inc(self.notify_dropped);
        self.tracer.emit(TraceEvent::DeliveryDropped { at, node });
    }

    /// Books one applied fault command.
    pub fn fault(&mut self, at: SimTime, kind: FaultKind) {
        self.registry.inc(self.fault_injected);
        self.tracer.emit(TraceEvent::Fault { at, kind });
    }

    /// Books one request failed fast against an Open breaker.
    pub fn fast_fail(&mut self, at: SimTime, node: u8) {
        if let Some(ids) = &self.supervise {
            self.registry.inc(ids.fast_fails);
        }
        self.tracer.emit(TraceEvent::TxnFailed { at, node });
    }

    /// Books one probe frame outcome against a Half-Open slave.
    pub fn probe(&mut self, at: SimTime, node: u8, ok: bool) {
        if let Some(ids) = &self.supervise {
            self.registry.inc(ids.probes);
        }
        self.tracer.emit(TraceEvent::Probe { at, node, ok });
    }

    /// Books one circuit-breaker state change, counting trips and
    /// readmissions and emitting the quarantine boundary events.
    pub fn breaker_transition(
        &mut self,
        at: SimTime,
        node: u8,
        from: BreakerState,
        to: BreakerState,
    ) {
        if let Some(ids) = &self.supervise {
            match to {
                BreakerState::Open if from == BreakerState::Closed => self.registry.inc(ids.trips),
                BreakerState::Closed => self.registry.inc(ids.readmissions),
                _ => {}
            }
        }
        self.tracer
            .emit(TraceEvent::BreakerTransition { at, node, from, to });
        match to {
            BreakerState::Open if from == BreakerState::Closed => {
                self.tracer.emit(TraceEvent::Quarantine {
                    at,
                    node,
                    entered: true,
                });
            }
            BreakerState::Closed => {
                self.tracer.emit(TraceEvent::Quarantine {
                    at,
                    node,
                    entered: false,
                });
            }
            _ => {}
        }
    }

    /// Books one degraded-mode rebalance touching `moved` slaves.
    pub fn rebalance(&mut self, at: SimTime, lane: u8, moved: u8, restored: bool) {
        if let Some(ids) = &self.supervise {
            self.registry.inc(ids.rebalances);
        }
        self.tracer.emit(TraceEvent::Rebalance {
            at,
            lane,
            moved,
            restored,
        });
    }

    /// Books one violation of the "never issue to an Open slave" invariant.
    /// Stays zero in a correct master; the chaos harness asserts it.
    pub fn open_issue(&mut self) {
        if let Some(ids) = &self.supervise {
            self.registry.inc(ids.open_issues);
        }
    }

    /// Accumulates a closed interval of breaker-Open time for the slave at
    /// 0-based chain position `pos`.
    pub fn slave_open_span(&mut self, pos: usize, span: SimDuration) {
        if let Some(ids) = &self.supervise {
            self.registry.add_busy(ids.slave_open[pos], span);
        }
    }

    /// Total breaker-Open time accumulated for chain position `pos`.
    #[must_use]
    pub fn slave_open_total(&self, pos: usize) -> SimDuration {
        self.supervise.as_ref().map_or(SimDuration::ZERO, |ids| {
            self.registry.busy_total(ids.slave_open[pos])
        })
    }

    /// Accumulates a closed interval of degraded-mode (evacuated-lane)
    /// time.
    pub fn degraded_span(&mut self, span: SimDuration) {
        if let Some(ids) = &self.supervise {
            self.registry.add_busy(ids.degraded, span);
        }
    }

    /// Total time the bus spent in degraded mode.
    #[must_use]
    pub fn degraded_total(&self) -> SimDuration {
        self.supervise.as_ref().map_or(SimDuration::ZERO, |ids| {
            self.registry.busy_total(ids.degraded)
        })
    }

    /// Books (and on first use registers) the `retry/clamped` warning: a
    /// configured retry policy's worst-case cumulative backoff exceeded the
    /// slave reset watchdog and was clamped.
    pub fn retry_policy_clamped(&mut self) {
        let id = match self.retry_clamped {
            Some(id) => id,
            None => {
                let id = self.registry.counter("retry/clamped");
                self.retry_clamped = Some(id);
                id
            }
        };
        self.registry.inc(id);
    }

    /// How many retry-policy clamp warnings were booked.
    #[must_use]
    pub fn retry_clamp_warnings(&self) -> u64 {
        self.retry_clamped.map_or(0, |id| self.registry.count(id))
    }

    /// Accumulates a closed busy interval on `lane`'s transmitter.
    pub fn lane_busy(&mut self, lane: usize, span: SimDuration) {
        self.registry.add_busy(self.lane_busy[lane], span);
    }

    /// Total accumulated busy time of `lane`'s transmitter.
    #[must_use]
    pub fn lane_busy_total(&self, lane: usize) -> SimDuration {
        self.registry.busy_total(self.lane_busy[lane])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_view_mirrors_registry() {
        let mut obs = BusInstruments::new(2);
        obs.txn_ok(SimTime::ZERO, 1, FrameClass::Control, 4);
        obs.retry(SimTime::ZERO, 1, FrameClass::StreamRead);
        obs.backoff(SimTime::ZERO, 96);
        obs.txn_failed(SimTime::ZERO, 1);
        obs.poll();
        obs.message_relayed(100);
        obs.message_failed();
        obs.delivery_dropped(SimTime::ZERO, 2);
        obs.fault(SimTime::ZERO, FaultKind::ChainHeal);
        obs.lane_busy(1, SimDuration::from_micros(5));

        let stats = obs.stats();
        assert_eq!(stats.transactions, 4);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.stream_read_retries, 1);
        assert_eq!(stats.control_retries, 0);
        assert_eq!(stats.backoff_events, 1);
        assert_eq!(stats.backoff_bits, 96);
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.polls, 1);
        assert_eq!(stats.bytes_relayed, 100);
        assert_eq!(stats.messages_relayed, 1);
        assert_eq!(stats.messages_failed, 1);
        assert_eq!(stats.dropped_deliveries, 1);
        assert_eq!(stats.faults_injected, 1);
        assert_eq!(obs.lane_busy_total(1), SimDuration::from_micros(5));
        assert_eq!(obs.lane_busy_total(0), SimDuration::ZERO);

        let snap = obs.snapshot(SimTime::ZERO);
        assert_eq!(snap.count("txn/total"), 4);
        assert_eq!(snap.duration("lane/1/busy"), SimDuration::from_micros(5));
    }

    #[test]
    fn unsupervised_registry_has_no_supervision_paths() {
        let obs = BusInstruments::new(1);
        let snap = obs.snapshot(SimTime::ZERO);
        assert!(snap
            .rows()
            .iter()
            .all(|(path, _)| !path.starts_with("supervise/") && path != "retry/clamped"));
        let stats = obs.stats();
        assert_eq!(stats.fast_fails, 0);
        assert_eq!(stats.open_issues, 0);
    }

    #[test]
    fn supervision_instruments_count_and_trace() {
        use tsbus_faults::BreakerState;
        let mut obs = BusInstruments::new(2);
        obs.enable_supervision(3);
        obs.set_tracer(Tracer::unbounded());
        let t = SimTime::from_micros(1);
        obs.fast_fail(t, 4);
        obs.probe(t, 4, true);
        obs.breaker_transition(t, 4, BreakerState::Closed, BreakerState::Open);
        obs.breaker_transition(t, 4, BreakerState::Open, BreakerState::HalfOpen);
        obs.breaker_transition(t, 4, BreakerState::HalfOpen, BreakerState::Closed);
        obs.rebalance(t, 1, 2, false);
        obs.open_issue();
        obs.slave_open_span(2, SimDuration::from_micros(7));
        obs.degraded_span(SimDuration::from_micros(3));
        obs.retry_policy_clamped();

        let stats = obs.stats();
        assert_eq!(stats.fast_fails, 1);
        assert_eq!(stats.probes, 1);
        assert_eq!(stats.breaker_trips, 1);
        assert_eq!(stats.breaker_readmissions, 1);
        assert_eq!(stats.rebalances, 1);
        assert_eq!(stats.open_issues, 1);
        assert_eq!(obs.slave_open_total(2), SimDuration::from_micros(7));
        assert_eq!(obs.degraded_total(), SimDuration::from_micros(3));
        assert_eq!(obs.retry_clamp_warnings(), 1);

        // Trips and readmissions come with quarantine boundary events.
        let quarantines: Vec<_> = obs
            .trace()
            .events()
            .filter_map(|e| match e {
                TraceEvent::Quarantine { entered, .. } => Some(*entered),
                _ => None,
            })
            .collect();
        assert_eq!(quarantines, vec![true, false]);
        assert!(obs.trace().events().any(|e| matches!(
            e,
            TraceEvent::Rebalance {
                lane: 1,
                moved: 2,
                restored: false,
                ..
            }
        )));
    }

    #[test]
    fn tracer_captures_typed_events_when_armed() {
        let mut obs = BusInstruments::new(1);
        obs.retry(SimTime::ZERO, 3, FrameClass::Control);
        assert_eq!(obs.trace().len(), 0, "tracing starts disabled");

        obs.set_tracer(Tracer::bounded(8));
        obs.retry(SimTime::from_micros(1), 3, FrameClass::Control);
        obs.fault(SimTime::from_micros(2), FaultKind::SlaveCrash(3));
        let events: Vec<_> = obs.trace().events().copied().collect();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], TraceEvent::Retry { node: 3, .. }));
        assert!(matches!(
            events[1],
            TraceEvent::Fault {
                kind: FaultKind::SlaveCrash(3),
                ..
            }
        ));
        assert_eq!(obs.trace_dropped(), 0);
    }
}
