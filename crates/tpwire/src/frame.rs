//! Bit-exact TX and RX frame encoding (paper Tables 1 and 2).
//!
//! Both frames are 16 bits, transmitted start bit first:
//!
//! ```text
//! TX:  0 | CMD[2:0]       | DATA[7:0] | CRC[3:0]
//! RX:  0 | INT | TYPE[1:0] | DATA[7:0] | CRC[3:0]
//! ```
//!
//! The in-memory representation packs the start bit into bit 15 and the CRC
//! into bits 3–0, so `wire & 0x8000 == 0` for every valid frame. CRC-4
//! (x⁴ + x + 1) covers `CMD`+`DATA` for TX and `TYPE`+`DATA` for RX.

use core::fmt;

use crate::crc;
use crate::node::NodeId;

/// Number of bit periods one frame occupies on a single line.
pub const FRAME_BITS: u32 = 16;

/// The 3-bit TX command set (our concretization; see `DESIGN.md` §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// Poll the selected node's status (RX carries node id + INT flag).
    Status = 0,
    /// Write `DATA` to the selected node at its current pointer
    /// (auto-increment).
    WriteData = 1,
    /// Read a byte from the selected node at its current pointer
    /// (auto-increment); RX `DATA` carries the byte.
    ReadData = 2,
    /// Select the node in `DATA[6:0]`; `DATA[7]` picks the address space
    /// (0 = memory, 1 = system registers).
    SelectNode = 3,
    /// Read the selected node's flags register.
    ReadFlags = 4,
    /// Write `DATA` to the selected node's command register.
    WriteCommand = 5,
    /// Read the selected node's SPI data register.
    ReadSpi = 6,
    /// Set the selected node's pointer register to `DATA`.
    SetPointer = 7,
}

impl Command {
    /// All commands in opcode order.
    pub const ALL: [Command; 8] = [
        Command::Status,
        Command::WriteData,
        Command::ReadData,
        Command::SelectNode,
        Command::ReadFlags,
        Command::WriteCommand,
        Command::ReadSpi,
        Command::SetPointer,
    ];

    /// The 3-bit opcode.
    #[must_use]
    pub fn opcode(self) -> u8 {
        self as u8
    }

    /// Decodes a 3-bit opcode.
    ///
    /// # Panics
    ///
    /// Panics if `opcode > 7` (callers mask to 3 bits first).
    #[must_use]
    pub fn from_opcode(opcode: u8) -> Command {
        assert!(opcode < 8, "command opcodes are 3 bits");
        Self::ALL[usize::from(opcode)]
    }

    /// Whether a slave answers this command with an RX frame (broadcast
    /// transactions never get a reply regardless).
    #[must_use]
    pub fn expects_reply(self) -> bool {
        true // every non-broadcast TX elicits an RX in this protocol
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Command::Status => "STATUS",
            Command::WriteData => "WRITE_DATA",
            Command::ReadData => "READ_DATA",
            Command::SelectNode => "SELECT_NODE",
            Command::ReadFlags => "READ_FLAGS",
            Command::WriteCommand => "WRITE_COMMAND",
            Command::ReadSpi => "READ_SPI",
            Command::SetPointer => "SET_POINTER",
        };
        write!(f, "{name}")
    }
}

/// The 2-bit RX response type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RxType {
    /// Generic acknowledge: `DATA[7:1]` = node id, `DATA[0]` = pending
    /// interrupt.
    Status = 0,
    /// Response to `READ_DATA`: `DATA` is the byte read.
    Data = 1,
    /// Response to `READ_FLAGS`: `DATA` is the flags register.
    Flags = 2,
    /// Response to `READ_SPI`: `DATA` is the SPI register.
    Spi = 3,
}

impl RxType {
    /// All response types in code order.
    pub const ALL: [RxType; 4] = [RxType::Status, RxType::Data, RxType::Flags, RxType::Spi];

    /// The 2-bit code.
    #[must_use]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a 2-bit code.
    ///
    /// # Panics
    ///
    /// Panics if `code > 3` (callers mask to 2 bits first).
    #[must_use]
    pub fn from_code(code: u8) -> RxType {
        assert!(code < 4, "RX type codes are 2 bits");
        Self::ALL[usize::from(code)]
    }
}

/// A decoded TX frame (master → slaves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxFrame {
    /// The command opcode.
    pub cmd: Command,
    /// The 8-bit data field (ignored by slaves for read commands).
    pub data: u8,
}

/// A decoded RX frame (slave → master).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RxFrame {
    /// Set when any slave the frame passed through (including the sender)
    /// has a pending interrupt.
    pub int: bool,
    /// The response type.
    pub rtype: RxType,
    /// The 8-bit data field.
    pub data: u8,
}

/// Why a 16-bit word failed to decode as a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeFrameError {
    /// The start bit was 1 (must be 0).
    StartBit,
    /// The CRC did not match the payload.
    Crc {
        /// The checksum carried by the frame.
        received: u8,
        /// The checksum recomputed over the payload.
        computed: u8,
    },
}

impl fmt::Display for DecodeFrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeFrameError::StartBit => write!(f, "invalid start bit"),
            DecodeFrameError::Crc { received, computed } => write!(
                f,
                "crc mismatch: frame carries {received:#x}, computed {computed:#x}"
            ),
        }
    }
}

impl std::error::Error for DecodeFrameError {}

impl TxFrame {
    /// Builds a frame for `cmd` carrying `data`.
    #[must_use]
    pub fn new(cmd: Command, data: u8) -> Self {
        TxFrame { cmd, data }
    }

    /// The `SELECT_NODE` frame for `node`, with `system_space` choosing the
    /// second node address (system registers).
    #[must_use]
    pub fn select(node: NodeId, system_space: bool) -> Self {
        let data = node.raw() | if system_space { 0x80 } else { 0 };
        TxFrame::new(Command::SelectNode, data)
    }

    /// Encodes to the 16-bit wire word (start bit in bit 15).
    ///
    /// # Examples
    ///
    /// ```
    /// use tsbus_tpwire::{Command, TxFrame};
    ///
    /// let frame = TxFrame::new(Command::WriteData, 0xA5);
    /// let wire = frame.encode();
    /// assert_eq!(wire & 0x8000, 0); // start bit is 0
    /// assert_eq!(TxFrame::decode(wire)?, frame);
    /// # Ok::<(), tsbus_tpwire::DecodeFrameError>(())
    /// ```
    #[must_use]
    pub fn encode(&self) -> u16 {
        let cmd = u16::from(self.cmd.opcode());
        let data = u16::from(self.data);
        let crc = u16::from(crc::tx_crc(self.cmd.opcode(), self.data));
        (cmd << 12) | (data << 4) | crc
    }

    /// Decodes a 16-bit wire word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeFrameError`] if the start bit is set or the CRC does
    /// not match.
    pub fn decode(wire: u16) -> Result<Self, DecodeFrameError> {
        if wire & 0x8000 != 0 {
            return Err(DecodeFrameError::StartBit);
        }
        let cmd = ((wire >> 12) & 0x7) as u8;
        let data = ((wire >> 4) & 0xFF) as u8;
        let received = (wire & 0xF) as u8;
        let computed = crc::tx_crc(cmd, data);
        if received != computed {
            return Err(DecodeFrameError::Crc { received, computed });
        }
        Ok(TxFrame {
            cmd: Command::from_opcode(cmd),
            data,
        })
    }
}

impl RxFrame {
    /// Builds a response frame.
    #[must_use]
    pub fn new(int: bool, rtype: RxType, data: u8) -> Self {
        RxFrame { int, rtype, data }
    }

    /// The standard status acknowledge: node id in `DATA[7:1]`, pending
    /// interrupt in `DATA[0]`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is the broadcast node (broadcast never replies).
    #[must_use]
    pub fn status_ack(node: NodeId, pending_interrupt: bool, int: bool) -> Self {
        assert!(
            !node.is_broadcast(),
            "the broadcast node never sends RX frames"
        );
        let data = (node.raw() << 1) | u8::from(pending_interrupt);
        RxFrame::new(int, RxType::Status, data)
    }

    /// For [`RxType::Status`] frames: the responding node id.
    #[must_use]
    pub fn status_node(&self) -> Option<NodeId> {
        if self.rtype == RxType::Status {
            NodeId::new(self.data >> 1).ok()
        } else {
            None
        }
    }

    /// For [`RxType::Status`] frames: the responder's pending-interrupt bit.
    #[must_use]
    pub fn status_pending_interrupt(&self) -> bool {
        self.rtype == RxType::Status && self.data & 1 == 1
    }

    /// Encodes to the 16-bit wire word (start bit in bit 15).
    #[must_use]
    pub fn encode(&self) -> u16 {
        let int = u16::from(self.int);
        let rtype = u16::from(self.rtype.code());
        let data = u16::from(self.data);
        let crc = u16::from(crc::rx_crc(self.rtype.code(), self.data));
        (int << 14) | (rtype << 12) | (data << 4) | crc
    }

    /// Decodes a 16-bit wire word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeFrameError`] if the start bit is set or the CRC does
    /// not match. The INT bit is *not* CRC-protected (it is rewritten by
    /// pass-through slaves), matching the specification's coverage of
    /// `TYPE` + `DATA` only.
    pub fn decode(wire: u16) -> Result<Self, DecodeFrameError> {
        if wire & 0x8000 != 0 {
            return Err(DecodeFrameError::StartBit);
        }
        let int = (wire >> 14) & 1 == 1;
        let rtype = ((wire >> 12) & 0x3) as u8;
        let data = ((wire >> 4) & 0xFF) as u8;
        let received = (wire & 0xF) as u8;
        let computed = crc::rx_crc(rtype, data);
        if received != computed {
            return Err(DecodeFrameError::Crc { received, computed });
        }
        Ok(RxFrame {
            int,
            rtype: RxType::from_code(rtype),
            data,
        })
    }
}

impl fmt::Display for TxFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TX[{} data={:#04x}]", self.cmd, self.data)
    }
}

impl fmt::Display for RxFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RX[{:?} data={:#04x}{}]",
            self.rtype,
            self.data,
            if self.int { " INT" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tx_layout_matches_table_1() {
        let frame = TxFrame::new(Command::SetPointer, 0xFF);
        let wire = frame.encode();
        assert_eq!(wire >> 15, 0, "start bit");
        assert_eq!((wire >> 12) & 0x7, 0b111, "CMD field");
        assert_eq!((wire >> 4) & 0xFF, 0xFF, "DATA field");
        assert_eq!(wire & 0xF, u16::from(crc::tx_crc(0b111, 0xFF)), "CRC field");
    }

    #[test]
    fn rx_layout_matches_table_2() {
        let frame = RxFrame::new(true, RxType::Flags, 0x5A);
        let wire = frame.encode();
        assert_eq!(wire >> 15, 0, "start bit");
        assert_eq!((wire >> 14) & 1, 1, "INT bit");
        assert_eq!((wire >> 12) & 0x3, 0b10, "TYPE field");
        assert_eq!((wire >> 4) & 0xFF, 0x5A, "DATA field");
        assert_eq!(wire & 0xF, u16::from(crc::rx_crc(0b10, 0x5A)), "CRC field");
    }

    #[test]
    fn select_frame_packs_space_bit() {
        let node = NodeId::new(0x2A).expect("valid");
        assert_eq!(TxFrame::select(node, false).data, 0x2A);
        assert_eq!(TxFrame::select(node, true).data, 0xAA);
    }

    #[test]
    fn status_ack_roundtrips_node_and_interrupt() {
        let node = NodeId::new(42).expect("valid");
        let ack = RxFrame::status_ack(node, true, false);
        assert_eq!(ack.status_node(), Some(node));
        assert!(ack.status_pending_interrupt());
        let ack2 = RxFrame::status_ack(node, false, true);
        assert!(!ack2.status_pending_interrupt());
        assert!(ack2.int);
    }

    #[test]
    #[should_panic(expected = "broadcast node never sends")]
    fn broadcast_cannot_ack() {
        let _ = RxFrame::status_ack(NodeId::BROADCAST, false, false);
    }

    #[test]
    fn decode_rejects_start_bit() {
        assert_eq!(TxFrame::decode(0x8000), Err(DecodeFrameError::StartBit));
        assert_eq!(RxFrame::decode(0xFFFF), Err(DecodeFrameError::StartBit));
    }

    #[test]
    fn decode_rejects_bad_crc() {
        let wire = TxFrame::new(Command::Status, 0).encode() ^ 0x0010; // flip a DATA bit
        assert!(matches!(
            TxFrame::decode(wire),
            Err(DecodeFrameError::Crc { .. })
        ));
    }

    #[test]
    fn data_frames_do_not_expose_status_accessors() {
        let frame = RxFrame::new(false, RxType::Data, 0xFF);
        assert_eq!(frame.status_node(), None);
        assert!(!frame.status_pending_interrupt());
    }

    proptest! {
        #[test]
        fn tx_roundtrip(cmd in 0u8..8, data in any::<u8>()) {
            let frame = TxFrame::new(Command::from_opcode(cmd), data);
            prop_assert_eq!(TxFrame::decode(frame.encode()), Ok(frame));
        }

        #[test]
        fn rx_roundtrip(int in any::<bool>(), code in 0u8..4, data in any::<u8>()) {
            let frame = RxFrame::new(int, RxType::from_code(code), data);
            prop_assert_eq!(RxFrame::decode(frame.encode()), Ok(frame));
        }

        /// Flipping any CRC-covered bit of a TX frame breaks decoding.
        #[test]
        fn tx_single_bit_errors_detected(
            cmd in 0u8..8,
            data in any::<u8>(),
            bit in 4u8..15, // CMD[14:12] and DATA[11:4]
        ) {
            let wire = TxFrame::new(Command::from_opcode(cmd), data).encode();
            let corrupted = wire ^ (1 << bit);
            prop_assert!(TxFrame::decode(corrupted).is_err());
        }

        /// Flipping any CRC bit of a TX frame breaks decoding too.
        #[test]
        fn tx_crc_field_errors_detected(cmd in 0u8..8, data in any::<u8>(), bit in 0u8..4) {
            let wire = TxFrame::new(Command::from_opcode(cmd), data).encode();
            prop_assert!(TxFrame::decode(wire ^ (1 << bit)).is_err());
        }

        /// The decoders are total: any 16-bit word either decodes or
        /// returns a structured error — never a panic, and decode∘encode
        /// is the identity on the accepted set.
        #[test]
        fn decoders_are_total(wire in any::<u16>()) {
            if let Ok(frame) = TxFrame::decode(wire) {
                prop_assert_eq!(frame.encode(), wire);
            }
            if let Ok(frame) = RxFrame::decode(wire) {
                prop_assert_eq!(frame.encode(), wire);
            }
        }

        /// The INT bit is deliberately outside CRC coverage: flipping it
        /// still decodes (pass-through slaves rewrite it in flight).
        #[test]
        fn rx_int_bit_not_crc_protected(code in 0u8..4, data in any::<u8>()) {
            let frame = RxFrame::new(false, RxType::from_code(code), data);
            let flipped = frame.encode() ^ (1 << 14);
            let decoded = RxFrame::decode(flipped).expect("INT flip still valid");
            prop_assert!(decoded.int);
            prop_assert_eq!(decoded.rtype, frame.rtype);
            prop_assert_eq!(decoded.data, frame.data);
        }
    }
}
