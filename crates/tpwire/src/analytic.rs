//! Closed-form TpWIRE timing — the TpICU/SCM hardware stand-in.
//!
//! The paper validates its NS-2 TpWIRE model against timing measured on the
//! real TpICU/SCM20 board (Table 3) and derives a scaling factor. We have no
//! access to that hardware, so this module plays its role: an *independent*,
//! bit-level, closed-form implementation of the same specification. The
//! Table 3 harness compares it against the discrete-event model and reports
//! the equivalent scaling factor; agreement is a genuine cross-check because
//! the two implementations share only [`BusParams`], not code paths.
//!
//! All functions count **bit periods** (exact integers); convert with
//! [`BusParams::bits_to_time`].

use tsbus_des::SimDuration;

use crate::bus::STREAM_HEADER_BYTES;
use crate::wiring::BusParams;

/// Bit periods of one transaction addressed to the slave at 0-based chain
/// position `pos` (= [`BusParams::transaction_bits`] with `hops = pos + 1`).
#[must_use]
pub fn txn_bits(params: &BusParams, pos: usize) -> u64 {
    u64::from(params.transaction_bits(pos as u32 + 1))
}

/// Bit periods for `n_frames` back-to-back data transactions with the slave
/// at position `pos` — the frame-count workload of the paper's Table 3
/// validation (a CBR source clocking 1-byte frames at a neighbour).
#[must_use]
pub fn raw_frames_bits(params: &BusParams, n_frames: u64, pos: usize) -> u64 {
    n_frames * txn_bits(params, pos)
}

/// Same as [`raw_frames_bits`], as a duration.
#[must_use]
pub fn raw_frames_time(params: &BusParams, n_frames: u64, pos: usize) -> SimDuration {
    params
        .bit_period()
        .saturating_mul(raw_frames_bits(params, n_frames, pos))
}

/// Bit periods to relay one `payload_len`-byte stream message from the slave
/// at `src_pos` to the slave at `dst_pos`, on an otherwise idle bus:
///
/// * **discovery**: the poll that finds the source (1 select) + pointer
///   setup + [`STREAM_HEADER_BYTES`] header reads — all at the source;
/// * **payload**: [`BusParams::relay_chunk`]-byte service slots; each slot
///   re-selects + re-points the source (except the first, which inherits the
///   discovery setup) and the destination (every slot), then moves its bytes
///   one `READ_DATA`/`WRITE_DATA` pair per byte.
///
/// Idle-poll interference is deliberately excluded — on a dedicated bus the
/// master never reaches a poll deadline mid-transfer when
/// `idle_poll_bits` is large relative to the transfer.
#[must_use]
pub fn message_relay_bits(
    params: &BusParams,
    src_pos: usize,
    dst_pos: usize,
    payload_len: usize,
) -> u64 {
    let ts = txn_bits(params, src_pos);
    let td = txn_bits(params, dst_pos);
    // Discovery: poll-select + set-pointer + header reads, all at src.
    let mut bits = ts * (2 + STREAM_HEADER_BYTES as u64);
    let chunk = usize::from(params.relay_chunk).max(1);
    let mut remaining = payload_len;
    let mut first = true;
    while remaining > 0 {
        let k = remaining.min(chunk) as u64;
        if !first {
            bits += 2 * ts; // re-select + re-point the source
        }
        bits += k * ts; // reads
        bits += 2 * td; // select + point the destination
        bits += k * td; // writes
        remaining -= k as usize;
        first = false;
    }
    bits
}

/// Same as [`message_relay_bits`], as a duration.
#[must_use]
pub fn message_relay_time(
    params: &BusParams,
    src_pos: usize,
    dst_pos: usize,
    payload_len: usize,
) -> SimDuration {
    params
        .bit_period()
        .saturating_mul(message_relay_bits(params, src_pos, dst_pos, payload_len))
}

/// Bit periods to relay one `payload_len`-byte stream message with DMA
/// bursts of `dma_block` bytes (see [`message_relay_bits`] for the
/// per-byte variant): discovery is unchanged; each service slot moves its
/// bytes in `⌈k / dma_block⌉` bursts per side instead of per-byte frame
/// pairs.
#[must_use]
pub fn message_relay_bits_dma(
    params: &BusParams,
    src_pos: usize,
    dst_pos: usize,
    payload_len: usize,
) -> u64 {
    let dma = usize::from(params.dma_block).max(1);
    let ts = txn_bits(params, src_pos);
    // Discovery (poll-select + pointer + header reads) is per-byte as ever.
    let mut bits = ts * (2 + STREAM_HEADER_BYTES as u64);
    let chunk = usize::from(params.relay_chunk).max(1);
    let mut remaining = payload_len;
    while remaining > 0 {
        let k = remaining.min(chunk);
        // Reads from the source, then writes to the destination, each in
        // dma_block-sized bursts (single trailing bytes fall back to the
        // per-byte path, matching the master's policy).
        for (pos, side_len) in [(src_pos, k), (dst_pos, k)] {
            let mut left = side_len;
            while left > 0 {
                if left >= 2 {
                    let b = left.min(dma) as u32;
                    bits += u64::from(params.dma_burst_bits(b, pos as u32 + 1));
                    left -= b as usize;
                } else {
                    // 1 trailing byte: setup (select + pointer) + the frame.
                    bits += 3 * txn_bits(params, pos);
                    left = 0;
                }
            }
        }
        remaining -= k;
    }
    bits
}

/// Steady-state relay goodput (payload bytes per second) for a saturated
/// `src_pos → dst_pos` flow with `message_len`-byte messages on a dedicated
/// bus.
#[must_use]
pub fn relay_goodput(
    params: &BusParams,
    src_pos: usize,
    dst_pos: usize,
    message_len: usize,
) -> f64 {
    if message_len == 0 {
        return 0.0;
    }
    let bits = message_relay_bits(params, src_pos, dst_pos, message_len) as f64;
    let secs = bits / params.bit_rate_hz;
    message_len as f64 / secs
}

/// Load multiplier on each surviving lane after degraded-mode rebalancing
/// evacuates `dead` of `lanes` parallel buses (§3.2 mode B wirings).
///
/// Striped assignment spreads every evacuated lane's slaves evenly over the
/// survivors, so each survivor carries `lanes / (lanes - dead)` of its
/// nominal load. `1.0` when nothing is evacuated; `f64::INFINITY` when no
/// lane survives (the bus is down, every transfer fails fast).
///
/// # Panics
///
/// Panics if `lanes == 0` or `dead > lanes`.
#[must_use]
pub fn degraded_load_factor(lanes: u8, dead: u8) -> f64 {
    assert!(lanes > 0, "a bus has at least one lane");
    assert!(dead <= lanes, "cannot evacuate more lanes than exist");
    if dead == 0 {
        return 1.0;
    }
    if dead == lanes {
        return f64::INFINITY;
    }
    f64::from(lanes) / f64::from(lanes - dead)
}

/// Degraded-mode relay goodput: [`relay_goodput`] divided by the
/// [`degraded_load_factor`] — each surviving lane time-shares its capacity
/// across the evacuated lanes' traffic, so a saturated flow sees its
/// goodput shrink by exactly the load multiplier. `0.0` when every lane is
/// evacuated.
#[must_use]
pub fn degraded_relay_goodput(
    params: &BusParams,
    src_pos: usize,
    dst_pos: usize,
    message_len: usize,
    dead: u8,
) -> f64 {
    let lanes = params.wiring.lanes();
    if dead >= lanes {
        return 0.0;
    }
    relay_goodput(params, src_pos, dst_pos, message_len) / degraded_load_factor(lanes, dead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wiring::Wiring;

    fn p() -> BusParams {
        BusParams::theseus_default()
    }

    #[test]
    fn txn_bits_matches_bus_params() {
        let params = p();
        for pos in 0..8 {
            assert_eq!(
                txn_bits(&params, pos),
                u64::from(params.transaction_bits(pos as u32 + 1))
            );
        }
    }

    #[test]
    fn raw_frames_scale_linearly() {
        let params = p();
        let one = raw_frames_bits(&params, 1, 1);
        assert_eq!(raw_frames_bits(&params, 10, 1), 10 * one);
        assert_eq!(raw_frames_bits(&params, 1000, 1), 1000 * one);
    }

    #[test]
    fn relay_cost_structure_for_one_byte() {
        // 1-byte message: discovery (5 txns at src) + 1 read at src +
        // (2 setup + 1 write) at dst.
        let params = p();
        let ts = txn_bits(&params, 0);
        let td = txn_bits(&params, 1);
        assert_eq!(message_relay_bits(&params, 0, 1, 1), 6 * ts + 3 * td);
    }

    #[test]
    fn relay_cost_structure_for_multi_chunk() {
        // 2 chunks of 8: second chunk adds 2 src re-setup txns.
        let params = p(); // relay_chunk = 8
        let ts = txn_bits(&params, 0);
        let td = txn_bits(&params, 1);
        let expected = 5 * ts                 // discovery
            + 8 * ts + 2 * td + 8 * td        // chunk 1
            + 2 * ts + 8 * ts + 2 * td + 8 * td; // chunk 2
        assert_eq!(message_relay_bits(&params, 0, 1, 16), expected);
    }

    #[test]
    fn empty_payload_costs_discovery_only() {
        let params = p();
        let ts = txn_bits(&params, 2);
        assert_eq!(message_relay_bits(&params, 2, 3, 0), 5 * ts);
    }

    #[test]
    fn two_wire_mode_a_speeds_up_relay() {
        let params = p();
        let two = params.with_wiring(Wiring::parallel_data(2).expect("valid"));
        let t1 = message_relay_bits(&params, 0, 2, 100) as f64 / params.bit_rate_hz;
        let t2 = message_relay_bits(&two, 0, 2, 100) as f64 / two.bit_rate_hz;
        let speedup = t1 / t2;
        assert!(
            (1.2..2.0).contains(&speedup),
            "2-wire speedup {speedup} outside the paper's 'almost double' band"
        );
    }

    #[test]
    fn goodput_improves_with_chunk_size() {
        let params = p();
        let small = params.with_relay_chunk(1);
        let large = params.with_relay_chunk(64);
        let g_small = relay_goodput(&small, 0, 1, 512);
        let g_large = relay_goodput(&large, 0, 1, 512);
        assert!(
            g_large > g_small,
            "bigger service slots must raise goodput ({g_small} vs {g_large})"
        );
    }

    #[test]
    fn goodput_of_empty_messages_is_zero() {
        assert_eq!(relay_goodput(&p(), 0, 1, 0), 0.0);
    }

    #[test]
    fn dma_bursts_beat_per_byte_relay_for_bulk() {
        let params = p().with_dma_block(32).with_relay_chunk(64);
        let plain = message_relay_bits(&params, 0, 1, 512);
        let dma = message_relay_bits_dma(&params, 0, 1, 512);
        let speedup = plain as f64 / dma as f64;
        assert!(
            speedup > 1.4,
            "bulk DMA speedup {speedup} should approach 2x"
        );
    }

    #[test]
    fn dma_does_not_pay_off_for_tiny_messages() {
        // The 3-transaction arming dominates short blocks.
        let params = p().with_dma_block(32);
        let plain = message_relay_bits(&params, 0, 1, 2);
        let dma = message_relay_bits_dma(&params, 0, 1, 2);
        assert!(
            dma >= plain,
            "2-byte DMA ({dma}) should not beat per-byte ({plain})"
        );
    }

    #[test]
    fn degraded_load_factor_tracks_survivors() {
        assert_eq!(degraded_load_factor(4, 0), 1.0);
        assert_eq!(degraded_load_factor(4, 1), 4.0 / 3.0);
        assert_eq!(degraded_load_factor(4, 2), 2.0);
        assert_eq!(degraded_load_factor(2, 1), 2.0);
        assert_eq!(degraded_load_factor(3, 3), f64::INFINITY);
        assert_eq!(degraded_load_factor(1, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "cannot evacuate more lanes than exist")]
    fn degraded_load_factor_rejects_impossible_evacuations() {
        let _ = degraded_load_factor(2, 3);
    }

    #[test]
    fn degraded_goodput_halves_on_a_two_bus_wiring() {
        let params = p().with_wiring(Wiring::parallel_buses(2).expect("valid"));
        let healthy = degraded_relay_goodput(&params, 0, 1, 512, 0);
        let degraded = degraded_relay_goodput(&params, 0, 1, 512, 1);
        assert_eq!(healthy, relay_goodput(&params, 0, 1, 512));
        assert!((degraded - healthy / 2.0).abs() < 1e-9);
        assert_eq!(degraded_relay_goodput(&params, 0, 1, 512, 2), 0.0);
    }

    #[test]
    fn farther_slaves_cost_more() {
        let params = p();
        let near = message_relay_bits(&params, 0, 1, 64);
        let far = message_relay_bits(&params, 5, 6, 64);
        assert!(far > near);
    }
}
