//! CRC-4 with generator polynomial x⁴ + x + 1, as specified for TpWIRE
//! frames.
//!
//! The checksum covers the 11 payload bits of a frame — `CMD[2:0]` +
//! `DATA[7:0]` for TX frames, `TYPE[1:0]` + `DATA[7:0]` (plus the INT bit by
//! our convention, making it also 11 bits… no: TYPE is 2 bits, so RX covers
//! 10 bits) — see [`crc4_bits`] which takes an explicit bit count so both
//! frame layouts share one implementation.

/// The generator polynomial x⁴ + x + 1, written without the leading x⁴ term
/// (0b0011) as used by the shift-register formulation below.
pub const POLY: u8 = 0b0011;

/// Computes the CRC-4 remainder of the `nbits` least-significant bits of
/// `data`, processed most-significant bit first.
///
/// This is the plain long-division formulation: shift the message through a
/// 4-bit register, XOR-ing in the polynomial whenever a 1 falls off the top.
///
/// # Panics
///
/// Panics if `nbits` is zero or greater than 16.
///
/// # Examples
///
/// ```
/// use tsbus_tpwire::crc::crc4_bits;
///
/// // CRC of an all-zero message is zero.
/// assert_eq!(crc4_bits(0, 11), 0);
/// // Any single-bit message has a nonzero CRC (the code detects all
/// // single-bit errors).
/// assert_ne!(crc4_bits(1 << 5, 11), 0);
/// ```
#[must_use]
pub fn crc4_bits(data: u16, nbits: u8) -> u8 {
    assert!(
        (1..=16).contains(&nbits),
        "crc4_bits handles 1..=16 bits, got {nbits}"
    );
    let mut reg: u8 = 0;
    for i in (0..nbits).rev() {
        let incoming = ((data >> i) & 1) as u8;
        let top = (reg >> 3) & 1;
        reg = (reg << 1) & 0x0F;
        if top ^ incoming == 1 {
            reg ^= POLY;
        }
    }
    reg
}

/// Computes the TX-frame CRC: over `CMD[2:0]` then `DATA[7:0]`, MSB first.
///
/// # Examples
///
/// ```
/// use tsbus_tpwire::crc::tx_crc;
///
/// let crc = tx_crc(0b101, 0xA5);
/// assert!(crc < 16);
/// ```
#[must_use]
pub fn tx_crc(cmd: u8, data: u8) -> u8 {
    debug_assert!(cmd < 8, "CMD is a 3-bit field");
    let message = (u16::from(cmd) << 8) | u16::from(data);
    crc4_bits(message, 11)
}

/// Computes the RX-frame CRC: over `TYPE[1:0]` then `DATA[7:0]`, MSB first.
#[must_use]
pub fn rx_crc(rtype: u8, data: u8) -> u8 {
    debug_assert!(rtype < 4, "TYPE is a 2-bit field");
    let message = (u16::from(rtype) << 8) | u16::from(data);
    crc4_bits(message, 10)
}

/// Verifies a message/CRC pair by recomputing the remainder.
#[must_use]
pub fn check(data: u16, nbits: u8, crc: u8) -> bool {
    crc4_bits(data, nbits) == crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Long-division reference: append 4 zero bits and reduce modulo
    /// x⁴ + x + 1 (0b10011) over GF(2).
    fn crc4_reference(data: u16, nbits: u8) -> u8 {
        let mut dividend = u32::from(data) << 4;
        let generator = 0b10011u32;
        for i in (4..(u32::from(nbits) + 4)).rev() {
            if (dividend >> i) & 1 == 1 {
                dividend ^= generator << (i - 4);
            }
        }
        (dividend & 0x0F) as u8
    }

    #[test]
    fn matches_reference_for_all_11_bit_messages() {
        for message in 0u16..(1 << 11) {
            assert_eq!(
                crc4_bits(message, 11),
                crc4_reference(message, 11),
                "message {message:#013b}"
            );
        }
    }

    #[test]
    fn zero_message_has_zero_crc() {
        assert_eq!(crc4_bits(0, 11), 0);
        assert_eq!(crc4_bits(0, 10), 0);
    }

    #[test]
    fn tx_and_rx_crc_cover_their_fields() {
        // Flipping any covered bit must change the checksum relative to the
        // baseline (CRCs detect all single-bit errors).
        let base = tx_crc(0b010, 0x3C);
        for bit in 0..11 {
            let flipped = ((u16::from(0b010u8) << 8) | 0x3C) ^ (1 << bit);
            let cmd = ((flipped >> 8) & 0x7) as u8;
            let data = (flipped & 0xFF) as u8;
            assert_ne!(tx_crc(cmd, data), base, "bit {bit} flip undetected");
        }
        let base = rx_crc(0b01, 0x3C);
        for bit in 0..10 {
            let flipped = ((u16::from(0b01u8) << 8) | 0x3C) ^ (1 << bit);
            let rtype = ((flipped >> 8) & 0x3) as u8;
            let data = (flipped & 0xFF) as u8;
            assert_ne!(rx_crc(rtype, data), base, "bit {bit} flip undetected");
        }
    }

    #[test]
    #[should_panic(expected = "1..=16 bits")]
    fn rejects_zero_bits() {
        let _ = crc4_bits(0, 0);
    }

    proptest! {
        /// x⁴+x+1 divides x¹⁵+1, so CRC-4 detects every single-bit error in
        /// messages up to 11 data bits (codeword length 15).
        #[test]
        fn detects_all_single_bit_errors(message in 0u16..(1 << 11), bit in 0u8..11) {
            let crc = crc4_bits(message, 11);
            let corrupted = message ^ (1 << bit);
            prop_assert!(!check(corrupted, 11, crc));
        }

        /// Single-bit corruption of the CRC field itself is detected too.
        #[test]
        fn detects_crc_field_corruption(message in 0u16..(1 << 11), bit in 0u8..4) {
            let crc = crc4_bits(message, 11);
            prop_assert!(!check(message, 11, crc ^ (1 << bit)));
        }

        /// Any burst error of length ≤ 4 is detected (degree-4 generator).
        #[test]
        fn detects_short_bursts(
            message in 0u16..(1 << 11),
            start in 0u8..8,
            pattern in 1u16..16,
        ) {
            let burst = pattern << start;
            prop_assume!(burst < (1 << 11));
            let crc = crc4_bits(message, 11);
            prop_assert!(!check(message ^ burst, 11, crc));
        }

        /// The check function accepts exactly the computed remainder.
        #[test]
        fn check_roundtrip(message in 0u16..(1 << 11)) {
            let crc = crc4_bits(message, 11);
            prop_assert!(check(message, 11, crc));
            for wrong in 0u8..16 {
                if wrong != crc {
                    prop_assert!(!check(message, 11, wrong));
                }
            }
        }
    }
}
