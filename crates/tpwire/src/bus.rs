//! The discrete-event TpWIRE bus model: master scheduler, daisy chain of
//! [`SlaveDevice`]s, retry/timeout handling, interrupt-driven stream relay
//! and *n*-wire lanes.
//!
//! ## Service model
//!
//! Attached components exchange **byte streams** through the bus:
//!
//! * [`SendStream`] — queue a payload at a source slave, addressed to
//!   another slave or to the master. The bus pushes a 3-byte header
//!   (`[dst, len_hi, len_lo]`) plus the payload into the source slave's
//!   outbound FIFO; the slave raises its interrupt flag.
//! * The **master** discovers pending data honestly, over the wire: its
//!   periodic round-robin keep-alive poll (a `SELECT_NODE` transaction whose
//!   acknowledge carries the slave's pending-interrupt bit) finds the
//!   source, reads the header, and relays the payload with
//!   `READ_DATA`/`WRITE_DATA` bursts through the stream FIFO, re-arbitrating
//!   between flows every [`BusParams::relay_chunk`] bytes. INT bits observed
//!   on in-flight RX frames accelerate polling.
//! * [`StreamDelivered`] — chunks arriving at the destination, with an
//!   `end_of_message` marker; [`StreamSent`] / [`StreamFailed`] report
//!   completion to the sender's attachment.
//!
//! ## Fidelity notes (see also `DESIGN.md` §5)
//!
//! * Every TX frame feeds every slave's reset watchdog (daisy-chain
//!   pass-through), so any bus activity keeps the chain alive; only a truly
//!   idle bus lets slaves reach the 2048-bit reset timeout.
//! * Frame errors: a corrupted TX executes nowhere and costs the master a
//!   response timeout before the resend; a corrupted RX means the slave
//!   *did* execute. The master distinguishes the two (timeout vs bad CRC):
//!   after a lost acknowledge of a write-class command it proceeds without
//!   resending (the write happened), and retried stream reads are made
//!   idempotent by the alternating-bit read port (`DATA[0]` toggle), so
//!   streams survive frame errors without duplication or loss.
//! * In `ParallelBuses` wiring, concurrent lanes never touch the same slave
//!   at the same time (per-slave ownership is held for the duration of a
//!   service slot), modeling driver-level mutual exclusion.

use std::collections::{HashMap, VecDeque};

use bytes::Bytes;
use tsbus_des::{Component, ComponentId, Context, Message, MessageExt, SimTime};
use tsbus_faults::{Admission, BreakerState, FaultCommand, FaultKind, FrameClass, GilbertElliott};
use tsbus_proto::{frame_step, FrameStep};

use crate::frame::{Command, RxFrame, RxType, TxFrame};
use crate::instrument::{BusInstruments, BusStats};
use crate::node::{AddressSpace, NodeId};
use crate::slave::{SlaveDevice, STREAM_ADDR};
use crate::supervisor::Supervisor;
use crate::wiring::{BusParams, RESET_TIMEOUT_BITS};

/// Header byte that addresses the master instead of a slave.
const DST_MASTER: u8 = 0x80;

/// Length of the relay header pushed ahead of every stream payload.
pub const STREAM_HEADER_BYTES: usize = 3;

/// Largest payload one [`SendStream`] may carry (16-bit length field).
pub const MAX_STREAM_PAYLOAD: usize = u16::MAX as usize;

/// One end of a stream transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamEndpoint {
    /// The bus master (or its attached host).
    Master,
    /// A slave node.
    Slave(NodeId),
}

impl std::fmt::Display for StreamEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamEndpoint::Master => write!(f, "master"),
            StreamEndpoint::Slave(node) => write!(f, "{node}"),
        }
    }
}

/// Message to the bus: queue `payload` at slave `from`, addressed to `to`.
///
/// The payload (plus a 3-byte relay header) enters the source slave's
/// outbound FIFO immediately; the actual transfer starts once the master
/// discovers the slave's interrupt over the wire.
#[derive(Debug)]
pub struct SendStream {
    /// The slave whose attachment is sending.
    pub from: NodeId,
    /// The destination endpoint.
    pub to: StreamEndpoint,
    /// The application payload (may be empty).
    pub payload: Bytes,
}

/// Message to the bus: write `command` into *every* slave's command
/// register at once, through the virtual broadcast node (id 127) — the
/// specification's mechanism "to access all nodes simultaneously".
///
/// Broadcast transactions elicit no RX frames; the master fires and
/// forgets (two frames: a broadcast `SELECT_NODE`, then the
/// `WRITE_COMMAND`).
#[derive(Debug)]
pub struct BroadcastCommand {
    /// The value written into every slave's command register.
    pub command: u8,
}

/// Message to the bus: the master's host sends `payload` to a slave
/// directly (no discovery; the master originates the write burst).
#[derive(Debug)]
pub struct MasterSend {
    /// The destination slave.
    pub to: NodeId,
    /// The application payload (may be empty).
    pub payload: Bytes,
}

/// Message from the bus to a destination attachment: a chunk of stream
/// bytes arrived.
#[derive(Debug)]
pub struct StreamDelivered {
    /// Originating endpoint.
    pub from: StreamEndpoint,
    /// Destination endpoint (the attachment receiving this message).
    pub to: StreamEndpoint,
    /// The chunk of payload bytes, in order.
    pub bytes: Bytes,
    /// True on the final chunk of one [`SendStream`] / [`MasterSend`]
    /// payload.
    pub end_of_message: bool,
}

/// Message from the bus to the sender's attachment: the payload was fully
/// relayed.
#[derive(Debug)]
pub struct StreamSent {
    /// Originating endpoint.
    pub from: StreamEndpoint,
    /// Destination endpoint.
    pub to: StreamEndpoint,
    /// Payload length in bytes.
    pub len: usize,
}

/// Message from the bus to the sender's attachment: the transfer was
/// abandoned (transaction retries exhausted, or the header named an unknown
/// destination).
#[derive(Debug)]
pub struct StreamFailed {
    /// Originating endpoint.
    pub from: StreamEndpoint,
    /// Destination endpoint as far as it was known.
    pub to: Option<StreamEndpoint>,
    /// Human-readable reason.
    pub reason: String,
    /// Whether the failure was a supervision fast-fail (circuit breaker
    /// open) rather than exhausted retries — fast failures burned no
    /// backoff on the wire and may be retried sooner by the caller.
    pub fast: bool,
}

/// Where a relay job's bytes come from.
#[derive(Debug)]
enum JobSource {
    /// The stream FIFO of the slave at this chain position (read over the
    /// wire).
    Fifo(usize),
    /// Bytes the master already holds (a [`MasterSend`]).
    Local(VecDeque<u8>),
}

/// A stream transfer in progress.
#[derive(Debug)]
struct RelayJob {
    from: StreamEndpoint,
    to: StreamEndpoint,
    source: JobSource,
    dst_pos: Option<usize>,
    total: usize,
    read_done: usize,
    written: usize,
    buffer: VecDeque<u8>,
    /// Read budget left in the current service slot.
    chunk_left: usize,
    /// Whether the current slot is in its write phase.
    writing: bool,
    /// Read-and-discard job (unknown destination recovery): the payload is
    /// drained from the source FIFO but never delivered.
    discard: bool,
}

impl RelayJob {
    fn src_pos(&self) -> Option<usize> {
        match self.source {
            JobSource::Fifo(pos) => Some(pos),
            JobSource::Local(_) => None,
        }
    }
}

/// One decision of the job state machine (see
/// [`TpWireBus::continue_job`]).
#[derive(Debug)]
enum JobStep {
    /// Ensure source selection/pointer, then read one payload byte.
    EnsureAndRead { src_pos: usize },
    /// Ensure destination selection/pointer, then write one payload byte.
    EnsureAndWrite { dst_node: NodeId },
    /// Hand buffered bytes to the master attachment (no transactions).
    DeliverToMaster {
        from: StreamEndpoint,
        bytes: Vec<u8>,
        end_of_message: bool,
        discard: bool,
    },
    /// Drain the destination slave's inbound FIFO to its attachment, then
    /// handle the chunk boundary.
    DrainInboundThenBoundary {
        from: StreamEndpoint,
        to: StreamEndpoint,
        dst_pos: usize,
        end_of_message: bool,
    },
    /// Nothing buffered: go straight to the chunk boundary.
    ChunkBoundary,
    /// Move `k` bytes from the source FIFO in one DMA burst.
    DmaRead { src_pos: usize, k: usize },
    /// Move these buffered bytes to the destination in one DMA burst.
    DmaWrite { dst_pos: usize, bytes: Vec<u8> },
}

/// What the master is doing on one lane.
#[derive(Debug)]
enum Activity {
    /// A chain-wide broadcast in progress; the remaining command value to
    /// send after the broadcast select (`None` once it went out).
    Broadcast { pending_command: Option<u8> },
    /// Keep-alive / discovery poll of the slave at `pos`.
    Poll { pos: usize },
    /// Reading the 3-byte relay header from the slave at `src_pos`.
    Discover { src_pos: usize, header: Vec<u8> },
    /// Relaying a stream payload.
    Job(RelayJob),
}

/// Per-lane master state.
#[derive(Debug)]
struct Lane {
    activity: Option<Activity>,
    in_flight: Option<InFlight>,
    /// Master's belief about which node is selected on this lane.
    selected: Option<(u8, AddressSpace)>,
    /// Master's belief that the selected node's pointer sits at the stream
    /// FIFO (conservative: cleared on every selection change).
    ptr_at_stream: bool,
    /// Open busy interval start (closed into the instruments' per-lane
    /// busy-time accumulator when the lane idles).
    busy_since: Option<SimTime>,
}

/// What kind of bus operation a lane has in flight.
#[derive(Debug)]
enum InFlightKind {
    /// One ordinary TX frame transaction.
    Frame(TxFrame),
    /// A DMA burst writing these stream bytes to the slave at `pos`.
    DmaWrite { pos: usize, bytes: Vec<u8> },
    /// A DMA burst reading up to `k` stream bytes from the slave at `pos`.
    DmaRead { pos: usize, k: usize },
}

#[derive(Debug)]
struct InFlight {
    kind: InFlightKind,
    attempts: u8,
}

/// Outcome of one transaction attempt, delivered as a self-message.
#[derive(Debug)]
struct TxnComplete {
    lane: usize,
    outcome: Outcome,
}

#[derive(Debug)]
enum Outcome {
    /// A valid RX arrived.
    Ok(RxFrame),
    /// A DMA burst completed; for reads, carries the block.
    BurstOk(Vec<u8>),
    /// No RX within the response timeout (corrupt TX, missing node, slave
    /// in reset): the command did not execute anywhere.
    NoReply,
    /// An RX arrived but failed its CRC check: the slave *did* execute the
    /// command, only the reply was lost.
    BadRx,
}

/// The periodic poll timer.
#[derive(Debug)]
struct PollTimer;

/// Self-message: a backoff delay elapsed, resend this frame.
#[derive(Debug)]
struct RetryFrame {
    lane: usize,
    frame: TxFrame,
    attempts: u8,
}

/// Self-message: a backoff delay elapsed, resend this DMA burst.
#[derive(Debug)]
struct RetryBurst {
    lane: usize,
    kind: InFlightKind,
    attempts: u8,
}

/// The TpWIRE bus as a simulation component.
///
/// Build it with a chain of node ids (position in the vector = daisy-chain
/// position, nearest to the master first), attach device components with
/// [`attach`](TpWireBus::attach), then drive it with [`SendStream`] /
/// [`MasterSend`] messages. See `tests/` in this crate for end-to-end
/// examples.
#[derive(Debug)]
pub struct TpWireBus {
    params: BusParams,
    chain: Vec<SlaveDevice>,
    /// raw node id → chain position.
    positions: HashMap<u8, usize>,
    attachments: HashMap<u8, ComponentId>,
    master_attachment: Option<ComponentId>,
    lanes: Vec<Lane>,
    /// Parked jobs awaiting a lane.
    jobs: VecDeque<RelayJob>,
    /// Broadcast commands waiting for a lane (highest priority: chain-wide
    /// control actions preempt data transfers at the next slot).
    broadcasts: VecDeque<u8>,
    /// Which lane currently owns each slave position (mutual exclusion
    /// between lanes in multi-lane wirings).
    owners: Vec<Option<usize>>,
    /// Per-lane, per-slave alternating-bit state for stream FIFO reads:
    /// the toggle the next fresh `READ_DATA` on that lane will carry.
    read_toggles: Vec<Vec<bool>>,
    /// An RX INT bit was observed; accelerate polling.
    int_seen: bool,
    poll_cursor: usize,
    next_poll_due: SimTime,
    /// Per-lane poll deadlines, used instead of [`next_poll_due`] when
    /// supervision is on: the wire plan restricts each lane to its own
    /// positions, so a single shared deadline would let whichever lane is
    /// kicked first claim every cycle and starve the other lanes'
    /// keep-alive (and quarantine-probe) polls.
    ///
    /// [`next_poll_due`]: TpWireBus::next_poll_due
    lane_poll_due: Vec<SimTime>,
    poll_timer_armed: bool,
    obs: BusInstruments,
    /// Gilbert-Elliott burst error channel, when configured.
    burst: Option<GilbertElliott>,
    /// Fault state: crashed (unresponsive) slaves, by chain position.
    crashed: Vec<bool>,
    /// Fault state: when set, only positions `< break_after` are reachable
    /// (the daisy chain is severed after that many devices).
    break_after: Option<usize>,
    /// The supervision layer (circuit breakers + lane plan), when
    /// configured via [`BusParams::supervision`].
    supervisor: Option<Supervisor>,
}

impl TpWireBus {
    /// Creates a bus with the given parameters and slave chain.
    ///
    /// # Panics
    ///
    /// Panics if `chain` is empty or contains a duplicate node id.
    #[must_use]
    pub fn new(mut params: BusParams, chain: Vec<NodeId>) -> Self {
        assert!(
            !chain.is_empty(),
            "a TpWIRE network needs at least one slave"
        );
        // PR 1's discovered constraint, now checked: a retry schedule whose
        // worst-case cumulative backoff exceeds the 2048-bit reset timeout
        // would silently reset the very slave it is trying to reach. Clamp
        // it and book a warning instead of simulating nonsense.
        let (retry, clamped) = params
            .retry
            .clamped_to_watchdog(u64::from(RESET_TIMEOUT_BITS));
        params.retry = retry;
        let mut positions = HashMap::new();
        let devices: Vec<SlaveDevice> = chain
            .iter()
            .enumerate()
            .map(|(pos, &node)| {
                let previous = positions.insert(node.raw(), pos);
                assert!(previous.is_none(), "duplicate node id {node} in chain");
                let mut device = SlaveDevice::new(node);
                device.set_port_count(usize::from(params.wiring.lanes()));
                device
            })
            .collect();
        let lanes = (0..params.wiring.lanes())
            .map(|_| Lane {
                activity: None,
                in_flight: None,
                selected: None,
                ptr_at_stream: false,
                busy_since: None,
            })
            .collect();
        let owners = vec![None; devices.len()];
        let read_toggles = vec![vec![true; devices.len()]; usize::from(params.wiring.lanes())];
        let crashed = vec![false; devices.len()];
        let mut obs = BusInstruments::new(usize::from(params.wiring.lanes()));
        if clamped {
            obs.retry_policy_clamped();
        }
        let supervisor = params.supervision.map(|cfg| {
            obs.enable_supervision(devices.len());
            Supervisor::new(
                cfg,
                params.bits64_to_time(cfg.open_bits),
                params.wiring.lanes(),
                devices.len(),
            )
        });
        TpWireBus {
            params,
            chain: devices,
            positions,
            attachments: HashMap::new(),
            master_attachment: None,
            lanes,
            jobs: VecDeque::new(),
            broadcasts: VecDeque::new(),
            owners,
            read_toggles,
            int_seen: false,
            poll_cursor: 0,
            next_poll_due: SimTime::ZERO,
            lane_poll_due: vec![SimTime::ZERO; usize::from(params.wiring.lanes())],
            poll_timer_armed: false,
            obs,
            burst: params.burst_error.map(GilbertElliott::new),
            crashed,
            break_after: None,
            supervisor,
        }
    }

    /// Registers `component` to receive [`StreamDelivered`] /
    /// [`StreamSent`] / [`StreamFailed`] messages for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of the chain.
    pub fn attach(&mut self, node: NodeId, component: ComponentId) {
        assert!(
            self.positions.contains_key(&node.raw()),
            "{node} is not part of this chain"
        );
        self.attachments.insert(node.raw(), component);
    }

    /// Registers the component receiving master-addressed deliveries.
    pub fn attach_master(&mut self, component: ComponentId) {
        self.master_attachment = Some(component);
    }

    /// The bus parameters.
    #[must_use]
    pub fn params(&self) -> &BusParams {
        &self.params
    }

    /// Number of slaves on the chain.
    #[must_use]
    pub fn slave_count(&self) -> usize {
        self.chain.len()
    }

    /// Borrows the slave with the given node id, if present.
    #[must_use]
    pub fn slave(&self, node: NodeId) -> Option<&SlaveDevice> {
        self.positions.get(&node.raw()).map(|&pos| &self.chain[pos])
    }

    /// Aggregate statistics so far, read back from the registry.
    #[must_use]
    pub fn stats(&self) -> BusStats {
        self.obs.stats()
    }

    /// The bus's instrument set (registry and typed trace ring).
    #[must_use]
    pub fn obs(&self) -> &BusInstruments {
        &self.obs
    }

    /// Mutable access to the instrument set, e.g. to arm the tracer with
    /// [`BusInstruments::set_tracer`].
    pub fn obs_mut(&mut self) -> &mut BusInstruments {
        &mut self.obs
    }

    /// Fraction of time the given lane's transmitter was busy in
    /// `[0, now]`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range for the wiring.
    #[must_use]
    pub fn lane_utilization(&self, lane: usize, now: SimTime) -> f64 {
        let extra = match self.lanes[lane].busy_since {
            Some(since) => now.saturating_duration_since(since),
            None => tsbus_des::SimDuration::ZERO,
        };
        let busy = self.obs.lane_busy_total(lane) + extra;
        let window = now.as_secs_f64();
        if window <= 0.0 {
            0.0
        } else {
            (busy.as_secs_f64() / window).min(1.0)
        }
    }

    fn attachment_of(&self, endpoint: StreamEndpoint) -> Option<ComponentId> {
        match endpoint {
            StreamEndpoint::Master => self.master_attachment,
            StreamEndpoint::Slave(node) => self.attachments.get(&node.raw()).copied(),
        }
    }

    fn notify(&mut self, ctx: &mut Context<'_>, endpoint: StreamEndpoint, msg: impl Message) {
        if let Some(component) = self.attachment_of(endpoint) {
            ctx.send(component, msg);
        } else {
            let node = match endpoint {
                StreamEndpoint::Master => DST_MASTER,
                StreamEndpoint::Slave(node) => node.raw(),
            };
            self.obs.delivery_dropped(ctx.now(), node);
        }
    }

    // ------------------------------------------------------------------
    // Fault state
    // ------------------------------------------------------------------

    /// Whether the slave at `pos` is alive and on the master's side of any
    /// chain break.
    fn reachable(&self, pos: usize) -> bool {
        !self.crashed[pos] && self.break_after.is_none_or(|after| pos < after)
    }

    /// Draws whether a single frame transmitted now is corrupted: the
    /// uniform per-frame rate OR'd with the burst channel's current state.
    fn frame_corrupted(&mut self, ctx: &mut Context<'_>) -> bool {
        let p = self.params;
        let uniform = p.frame_error_rate > 0.0 && ctx.rng().chance(p.frame_error_rate);
        let bursty = match self.burst.as_mut() {
            Some(channel) => channel.corrupts(ctx.now(), p.frame_time(), ctx.rng()),
            None => false,
        };
        uniform | bursty
    }

    /// The combined per-frame error probability right now (uniform rate
    /// plus the burst channel's current state), for aggregating over the
    /// back-to-back frames of a DMA burst.
    fn per_frame_error_rate(&mut self, ctx: &mut Context<'_>) -> f64 {
        let p = self.params;
        let burst_rate = match self.burst.as_mut() {
            Some(channel) => channel.rate_at(ctx.now(), p.frame_time(), ctx.rng()),
            None => 0.0,
        };
        1.0 - (1.0 - p.frame_error_rate) * (1.0 - burst_rate)
    }

    /// The node the master believes is selected on `lane` (the broadcast
    /// id when no selection is held — e.g. a failed select itself).
    fn lane_node(&self, lane_idx: usize) -> u8 {
        self.lanes[lane_idx]
            .selected
            .map_or(NodeId::BROADCAST.raw(), |(node, _)| node)
    }

    // ------------------------------------------------------------------
    // Supervision
    // ------------------------------------------------------------------

    /// The chain position a frame on `lane` addresses: the selection target
    /// of a `SelectNode`, the currently selected node otherwise; `None` for
    /// broadcasts and unknown nodes.
    fn frame_target_pos(&self, lane_idx: usize, frame: &TxFrame) -> Option<usize> {
        let raw = match frame.cmd {
            Command::SelectNode => frame.data & 0x7F,
            _ => self.lane_node(lane_idx),
        };
        if raw == NodeId::BROADCAST.raw() {
            return None;
        }
        self.positions.get(&raw).copied()
    }

    /// Whether `pos`'s breaker is Open right now (always `false` when
    /// supervision is off).
    fn breaker_open(&self, pos: usize) -> bool {
        self.supervisor
            .as_ref()
            .is_some_and(|sup| sup.state(pos) == BreakerState::Open)
    }

    /// Whether regular traffic for `pos` must fail fast (Open or
    /// Half-Open; always `false` when supervision is off).
    fn traffic_quarantined(&self, pos: usize) -> bool {
        self.supervisor
            .as_ref()
            .is_some_and(|sup| sup.quarantined(pos))
    }

    /// Feeds one transaction outcome for the slave at `pos` into its
    /// breaker, booking probe results and any fallout (transition trace,
    /// quarantine spans, rebalances) into the instruments. No-op when
    /// supervision is off.
    fn supervise_outcome(&mut self, now: SimTime, pos: usize, ok: bool) {
        let Some(sup) = self.supervisor.as_mut() else {
            return;
        };
        let node = self.chain[pos].node().raw();
        let was_probing = sup.state(pos) == BreakerState::HalfOpen;
        if was_probing {
            self.obs.probe(now, node, ok);
        }
        let effects = sup.record(now, pos, ok);
        if let Some(tr) = effects.transition {
            self.obs.breaker_transition(now, node, tr.from, tr.to);
        }
        if let Some(span) = effects.quarantine_closed {
            self.obs.slave_open_span(pos, span);
        }
        for (lane, moved, restored) in effects.rebalances {
            self.obs.rebalance(now, lane, moved, restored);
        }
        if let Some(span) = effects.degraded_closed {
            self.obs.degraded_span(span);
        }
    }

    /// Fails the relay job on `lane` fast because `pos` is quarantined
    /// (no transaction is issued, no backoff is burned).
    fn fast_fail_job(&mut self, ctx: &mut Context<'_>, lane_idx: usize, pos: usize) {
        let Some(Activity::Job(job)) = self.lanes[lane_idx].activity.take() else {
            unreachable!("fast_fail_job outside a job")
        };
        let node = self.chain[pos].node().raw();
        self.obs.fast_fail(ctx.now(), node);
        self.fail_job(ctx, lane_idx, job, "slave quarantined by bus supervision");
        self.schedule_lane(ctx, lane_idx);
    }

    /// Whether the supervision layer's rebalancing currently conserves the
    /// lane assignment (trivially `true` when supervision is off). The
    /// chaos harness asserts this after every trial.
    #[must_use]
    pub fn supervision_conserved(&self) -> bool {
        self.supervisor
            .as_ref()
            .is_none_or(Supervisor::conserves_assignment)
    }

    /// The circuit-breaker state of `node`, when supervision is on and the
    /// node is part of the chain.
    #[must_use]
    pub fn breaker_state(&self, node: NodeId) -> Option<BreakerState> {
        let sup = self.supervisor.as_ref()?;
        let pos = *self.positions.get(&node.raw())?;
        Some(sup.state(pos))
    }

    /// Fraction of `[0, now]` the slave `node` was *not* quarantined.
    /// `1.0` when supervision is off or the node is unknown.
    #[must_use]
    pub fn slave_availability(&self, node: NodeId, now: SimTime) -> f64 {
        let (Some(sup), Some(&pos)) = (self.supervisor.as_ref(), self.positions.get(&node.raw()))
        else {
            return 1.0;
        };
        let residual = match sup.quarantined_since(pos) {
            Some(since) => now.saturating_duration_since(since),
            None => tsbus_des::SimDuration::ZERO,
        };
        let open = self.obs.slave_open_total(pos) + residual;
        let window = now.as_secs_f64();
        if window <= 0.0 {
            1.0
        } else {
            (1.0 - open.as_secs_f64() / window).max(0.0)
        }
    }

    /// Whether the bus is currently in degraded mode (at least one lane
    /// evacuated). Always `false` when supervision is off.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.supervisor.as_ref().is_some_and(Supervisor::degraded)
    }

    /// The retry class of an ordinary frame.
    fn class_of_frame(frame: &TxFrame) -> FrameClass {
        match frame.cmd {
            Command::ReadData => FrameClass::StreamRead,
            Command::WriteData => FrameClass::StreamWrite,
            _ => FrameClass::Control,
        }
    }

    /// The retry class of a DMA burst.
    fn class_of_burst(kind: &InFlightKind) -> FrameClass {
        match kind {
            InFlightKind::DmaRead { .. } => FrameClass::StreamRead,
            InFlightKind::DmaWrite { .. } => FrameClass::StreamWrite,
            InFlightKind::Frame(_) => unreachable!("bursts are DMA kinds only"),
        }
    }

    /// Applies one injected fault. Takes effect from the next transaction:
    /// an already in-flight completion keeps its pre-computed outcome,
    /// modeling command latency in a real fault-injection rig.
    fn apply_fault(&mut self, ctx: &mut Context<'_>, kind: FaultKind) {
        self.obs.fault(ctx.now(), kind);
        let position_of = |positions: &HashMap<u8, usize>, node: u8| -> usize {
            *positions
                .get(&node)
                .unwrap_or_else(|| panic!("fault targets node {node}, which is not on this chain"))
        };
        match kind {
            FaultKind::SlaveCrash(node) => {
                let pos = position_of(&self.positions, node);
                self.crashed[pos] = true;
            }
            FaultKind::SlaveRevive(node) => {
                let pos = position_of(&self.positions, node);
                self.crashed[pos] = false;
            }
            FaultKind::SlaveReset(node) => {
                let pos = position_of(&self.positions, node);
                let now = ctx.now();
                let params = self.params;
                self.chain[pos].force_reset(now, &params);
            }
            FaultKind::ChainBreak { after } => {
                self.break_after = Some(after.min(self.chain.len()));
            }
            FaultKind::ChainHeal => {
                self.break_after = None;
            }
        }
    }

    // ------------------------------------------------------------------
    // Transaction engine
    // ------------------------------------------------------------------

    /// Issues `frame` on `lane`, driving the slave chain and scheduling the
    /// completion event.
    fn issue(&mut self, ctx: &mut Context<'_>, lane_idx: usize, frame: TxFrame, attempts: u8) {
        // Chaos-harness invariant probe: a request issued to a slave whose
        // breaker is Open is a supervision bug (the layers above should
        // have fast-failed it). Booked, never expected.
        if let Some(pos) = self.frame_target_pos(lane_idx, &frame) {
            if self.breaker_open(pos) {
                self.obs.open_issue();
            }
        }
        let p = self.params;
        let frame_time = p.frame_time();
        let hop = p.bits_to_time(p.hop_delay_bits);
        let now = ctx.now();
        let timeout_cost = frame_time + p.response_timeout() + p.bits_to_time(p.gap_bits);

        let lane = &mut self.lanes[lane_idx];
        lane.in_flight = Some(InFlight {
            kind: InFlightKind::Frame(frame),
            attempts,
        });
        if lane.busy_since.is_none() {
            lane.busy_since = Some(now);
        }

        let tx_corrupt = self.frame_corrupted(ctx);
        if tx_corrupt {
            ctx.schedule_self_in(
                timeout_cost,
                TxnComplete {
                    lane: lane_idx,
                    outcome: Outcome::NoReply,
                },
            );
            return;
        }

        // Drive every slave (daisy-chain pass-through), collecting the reply.
        // During a broadcast activity every slave is selected, executes,
        // and stays silent ("none of them replies"), so replies collected
        // here are discarded wholesale.
        let in_broadcast = matches!(
            self.lanes[lane_idx].activity,
            Some(Activity::Broadcast { .. })
        );
        let broadcast = in_broadcast
            || (frame.cmd == Command::SelectNode && frame.data & 0x7F == NodeId::BROADCAST.raw());
        let mut reply: Option<(usize, RxFrame)> = None;
        let crashed = &self.crashed;
        let break_after = self.break_after;
        for (pos, slave) in self.chain.iter_mut().enumerate() {
            // Crashed slaves neither execute nor reply (their chain
            // repeater stays passive); nothing past a chain break sees the
            // frame at all.
            if crashed[pos] || break_after.is_some_and(|after| pos >= after) {
                continue;
            }
            let arrival = now + frame_time + hop * (pos as u64 + 1);
            if let Some(rx) = slave.on_tx(&frame, lane_idx, arrival, &p) {
                debug_assert!(broadcast || reply.is_none(), "two slaves replied to one TX");
                reply = Some((pos, rx));
            }
        }
        if broadcast {
            reply = None;
        }

        if broadcast {
            // No reply expected; model as a successful fire-and-forget.
            let cost = p.broadcast_time(self.chain.len() as u32);
            ctx.schedule_self_in(
                cost,
                TxnComplete {
                    lane: lane_idx,
                    outcome: Outcome::Ok(RxFrame::new(false, RxType::Status, 0)),
                },
            );
            return;
        }

        match reply {
            Some((pos, mut rx)) => {
                // INT bit: OR of pending interrupts along the return path
                // (positions 0..=pos, including the replier); a crashed
                // slave's INT driver is dead.
                rx.int = self.chain[..=pos]
                    .iter()
                    .enumerate()
                    .any(|(i, s)| !self.crashed[i] && s.pending_interrupt());
                let rx_corrupt = self.frame_corrupted(ctx);
                let cost = p.transaction_time(pos as u32 + 1);
                let outcome = if rx_corrupt {
                    Outcome::BadRx
                } else {
                    Outcome::Ok(rx)
                };
                ctx.schedule_self_in(
                    cost,
                    TxnComplete {
                        lane: lane_idx,
                        outcome,
                    },
                );
            }
            None => {
                ctx.schedule_self_in(
                    timeout_cost,
                    TxnComplete {
                        lane: lane_idx,
                        outcome: Outcome::NoReply,
                    },
                );
            }
        }
    }

    /// Issues a DMA burst on `lane`. The three arming transactions (select
    /// system space, point at the DMA counter, write the block length) are
    /// folded into the burst cost; state effects are applied through the
    /// slave's DMA entry points.
    ///
    /// Error model: a corruption anywhere in the arming or data frames
    /// aborts the block before it commits (the slave's DMA engine discards
    /// partial blocks, and retains a read block until the next arming), so
    /// plain whole-burst retries stay byte-exact. A corrupted *block
    /// acknowledge* on a write means the data landed; the master verifies
    /// by re-reading the DMA counter (one extra transaction) instead of
    /// resending.
    fn issue_burst(
        &mut self,
        ctx: &mut Context<'_>,
        lane_idx: usize,
        kind: InFlightKind,
        attempts: u8,
    ) {
        let p = self.params;
        let now = ctx.now();
        let lane = &mut self.lanes[lane_idx];
        if lane.busy_since.is_none() {
            lane.busy_since = Some(now);
        }
        let (pos, k, is_write) = match &kind {
            InFlightKind::DmaWrite { pos, bytes } => (*pos, bytes.len(), true),
            InFlightKind::DmaRead { pos, k } => (*pos, *k, false),
            InFlightKind::Frame(_) => unreachable!("issue_burst takes DMA kinds only"),
        };
        // Same invariant probe as `issue`: bursts must never target an
        // Open slave either.
        if self.breaker_open(pos) {
            self.obs.open_issue();
        }
        let hops = pos as u32 + 1;
        let cost = p.dma_burst_time(k as u32, hops);

        // A crashed or severed target never acknowledges the arming select:
        // the whole burst degenerates into a timeout.
        if !self.reachable(pos) {
            self.lanes[lane_idx].in_flight = Some(InFlight { kind, attempts });
            let timeout_cost = cost + p.response_timeout();
            ctx.schedule_self_in(
                timeout_cost,
                TxnComplete {
                    lane: lane_idx,
                    outcome: Outcome::NoReply,
                },
            );
            return;
        }

        // One corruption draw over the arming + data frames (≈ k + 7
        // frame slots), one for the block acknowledge. The burst channel's
        // state at the start of the burst sets the per-frame rate for the
        // whole block (bursts are short next to channel sojourns).
        let per_frame = self.per_frame_error_rate(ctx);
        let body_frames = k as f64 + 7.0;
        let body_corrupt =
            per_frame > 0.0 && ctx.rng().chance(1.0 - (1.0 - per_frame).powf(body_frames));
        if body_corrupt {
            self.lanes[lane_idx].in_flight = Some(InFlight { kind, attempts });
            let timeout_cost = cost + p.response_timeout();
            ctx.schedule_self_in(
                timeout_cost,
                TxnComplete {
                    lane: lane_idx,
                    outcome: Outcome::NoReply,
                },
            );
            return;
        }
        let ack_corrupt = per_frame > 0.0 && ctx.rng().chance(per_frame);
        let mut total = cost;
        if ack_corrupt {
            // Write verification / read block re-request costs one extra
            // ordinary transaction.
            total += p.transaction_time(hops);
            let node = self.chain[pos].node().raw();
            self.obs.retry(now, node, Self::class_of_burst(&kind));
        }
        let arrival = now + total;
        // Every other reachable slave on this port sees the burst pass
        // through: watchdogs fed, selections cleared (the arming select
        // addressed the target).
        let crashed = &self.crashed;
        let break_after = self.break_after;
        for (other, slave) in self.chain.iter_mut().enumerate() {
            if other != pos && !crashed[other] && break_after.is_none_or(|after| other < after) {
                slave.observe_burst(lane_idx, arrival, &p);
            }
        }
        let outcome = if is_write {
            let InFlightKind::DmaWrite { pos, ref bytes } = kind else {
                unreachable!()
            };
            if self.chain[pos].dma_burst_write(lane_idx, bytes, arrival, &p) {
                Outcome::BurstOk(Vec::new())
            } else {
                Outcome::NoReply // interface in reset: nothing applied
            }
        } else {
            match self.chain[pos].dma_burst_read(lane_idx, k, arrival, &p) {
                Some(block) => Outcome::BurstOk(block),
                None => Outcome::NoReply,
            }
        };
        // After a successful burst the lane is selected at the target in
        // memory space with the pointer parked on the stream FIFO.
        if matches!(outcome, Outcome::BurstOk(_)) {
            let node_raw = self.chain[pos].node().raw();
            self.lanes[lane_idx].selected = Some((node_raw, AddressSpace::Memory));
            self.lanes[lane_idx].ptr_at_stream = true;
        }
        self.lanes[lane_idx].in_flight = Some(InFlight { kind, attempts });
        ctx.schedule_self_in(
            total,
            TxnComplete {
                lane: lane_idx,
                outcome,
            },
        );
    }

    /// Handles a completed transaction attempt: retry bookkeeping, then
    /// activity advancement.
    fn on_txn_complete(&mut self, ctx: &mut Context<'_>, lane_idx: usize, outcome: Outcome) {
        let in_flight = self.lanes[lane_idx]
            .in_flight
            .take()
            .expect("completion without an in-flight transaction");
        let frame = match in_flight.kind {
            InFlightKind::Frame(frame) => frame,
            kind @ (InFlightKind::DmaWrite { .. } | InFlightKind::DmaRead { .. }) => {
                let pos = match &kind {
                    InFlightKind::DmaWrite { pos, .. } | InFlightKind::DmaRead { pos, .. } => *pos,
                    InFlightKind::Frame(_) => unreachable!(),
                };
                let node = self.chain[pos].node().raw();
                match outcome {
                    Outcome::BurstOk(block) => {
                        // Arming (3 transactions) + the burst itself.
                        self.obs
                            .txn_ok(ctx.now(), node, Self::class_of_burst(&kind), 4);
                        self.supervise_outcome(ctx.now(), pos, true);
                        self.advance_burst(ctx, lane_idx, &kind, Some(block));
                    }
                    Outcome::NoReply => {
                        let class = Self::class_of_burst(&kind);
                        self.supervise_outcome(ctx.now(), pos, false);
                        // A freshly tripped breaker aborts the burst rather
                        // than burning backoff against a dead slave — the
                        // breaker-admission input of the shared ladder.
                        let fenced = self.breaker_open(pos);
                        let retry = self.params.retry.for_class(class);
                        match frame_step(in_flight.attempts, fenced, &retry) {
                            FrameStep::Retry {
                                attempt,
                                delay_bits,
                            } => {
                                self.obs.retry(ctx.now(), node, class);
                                if delay_bits == 0 {
                                    self.issue_burst(ctx, lane_idx, kind, attempt);
                                } else {
                                    self.obs.backoff(ctx.now(), delay_bits);
                                    ctx.schedule_self_in(
                                        self.params.bits64_to_time(delay_bits),
                                        RetryBurst {
                                            lane: lane_idx,
                                            kind,
                                            attempts: attempt,
                                        },
                                    );
                                }
                            }
                            step @ (FrameStep::FastFail | FrameStep::GiveUp) => {
                                if matches!(step, FrameStep::FastFail) {
                                    self.obs.fast_fail(ctx.now(), node);
                                } else {
                                    self.obs.txn_failed(ctx.now(), node);
                                }
                                self.lanes[lane_idx].selected = None;
                                self.lanes[lane_idx].ptr_at_stream = false;
                                self.advance_burst(ctx, lane_idx, &kind, None);
                            }
                        }
                    }
                    Outcome::Ok(_) | Outcome::BadRx => {
                        unreachable!("bursts produce BurstOk or NoReply only")
                    }
                }
                return;
            }
        };
        match outcome {
            Outcome::Ok(rx) => {
                let node = self.lane_node(lane_idx);
                self.obs
                    .txn_ok(ctx.now(), node, Self::class_of_frame(&frame), 1);
                if let Some(pos) = self.frame_target_pos(lane_idx, &frame) {
                    self.supervise_outcome(ctx.now(), pos, true);
                }
                if rx.int {
                    self.int_seen = true;
                }
                self.advance_activity(ctx, lane_idx, frame, Some(rx));
            }
            Outcome::BurstOk(_) => unreachable!("frame transactions never burst"),
            Outcome::BadRx
                if matches!(
                    frame.cmd,
                    Command::WriteData
                        | Command::SelectNode
                        | Command::SetPointer
                        | Command::WriteCommand
                ) =>
            {
                // The command executed; only the acknowledge was lost. A
                // resend would double-execute (e.g. duplicate a FIFO
                // write), so the master proceeds with a synthetic "blank"
                // acknowledge instead. Reads fall through to the retry arm
                // below — the alternating-bit FIFO port makes retried
                // stream reads idempotent.
                let node = self.lane_node(lane_idx);
                let class = Self::class_of_frame(&frame);
                self.obs.txn_ok(ctx.now(), node, class, 1);
                // The lost RX still cost the wire time.
                self.obs.retry(ctx.now(), node, class);
                // Health-wise a corrupted acknowledge is still a failure
                // signal: a flaky link trips the breaker even when every
                // command happens to execute.
                if let Some(pos) = self.frame_target_pos(lane_idx, &frame) {
                    self.supervise_outcome(ctx.now(), pos, false);
                }
                let synthetic = RxFrame::new(false, RxType::Status, 0);
                self.advance_activity(ctx, lane_idx, frame, Some(synthetic));
            }
            Outcome::NoReply | Outcome::BadRx => {
                let node = self.lane_node(lane_idx);
                let class = Self::class_of_frame(&frame);
                let pos = self.frame_target_pos(lane_idx, &frame);
                if let Some(p) = pos {
                    self.supervise_outcome(ctx.now(), p, false);
                }
                // A freshly tripped breaker aborts the attempt sequence
                // instead of burning the remaining cumulative backoff
                // against the 2048-bit watchdog — the breaker-admission
                // input of the shared ladder.
                let fenced = pos.is_some_and(|p| self.breaker_open(p));
                let retry = self.params.retry.for_class(class);
                match frame_step(in_flight.attempts, fenced, &retry) {
                    FrameStep::Retry {
                        attempt,
                        delay_bits,
                    } => {
                        self.obs.retry(ctx.now(), node, class);
                        if delay_bits == 0 {
                            self.issue(ctx, lane_idx, frame, attempt);
                        } else {
                            self.obs.backoff(ctx.now(), delay_bits);
                            ctx.schedule_self_in(
                                self.params.bits64_to_time(delay_bits),
                                RetryFrame {
                                    lane: lane_idx,
                                    frame,
                                    attempts: attempt,
                                },
                            );
                        }
                    }
                    step @ (FrameStep::FastFail | FrameStep::GiveUp) => {
                        if matches!(step, FrameStep::FastFail) {
                            self.obs.fast_fail(ctx.now(), node);
                        } else {
                            self.obs.txn_failed(ctx.now(), node);
                        }
                        // Whatever the master believed about this lane's
                        // selection may be stale (e.g. the slave reset).
                        self.lanes[lane_idx].selected = None;
                        self.lanes[lane_idx].ptr_at_stream = false;
                        self.advance_activity(ctx, lane_idx, frame, None);
                    }
                }
            }
        }
    }

    /// Advances the lane's current activity after a transaction concluded
    /// (`rx = None` means the transaction failed permanently).
    fn advance_activity(
        &mut self,
        ctx: &mut Context<'_>,
        lane_idx: usize,
        frame: TxFrame,
        rx: Option<RxFrame>,
    ) {
        // Track the master's view of lane selection and pointer state.
        if rx.is_some() {
            match frame.cmd {
                Command::SelectNode => {
                    let space = if frame.data & 0x80 != 0 {
                        AddressSpace::System
                    } else {
                        AddressSpace::Memory
                    };
                    self.lanes[lane_idx].selected = Some((frame.data & 0x7F, space));
                    self.lanes[lane_idx].ptr_at_stream = false;
                }
                Command::SetPointer => {
                    self.lanes[lane_idx].ptr_at_stream = frame.data == STREAM_ADDR;
                }
                _ => {}
            }
        }

        let activity = self.lanes[lane_idx]
            .activity
            .take()
            .expect("transaction outside any activity");
        match activity {
            Activity::Broadcast { pending_command } => {
                match pending_command {
                    Some(command) => {
                        // The broadcast select reached everyone; now the
                        // command itself, also unacknowledged.
                        self.lanes[lane_idx].activity = Some(Activity::Broadcast {
                            pending_command: None,
                        });
                        self.issue(
                            ctx,
                            lane_idx,
                            TxFrame::new(Command::WriteCommand, command),
                            0,
                        );
                    }
                    None => {
                        // Broadcast selections are transient: deselect by
                        // reselecting nothing (lane belief cleared so the
                        // next activity re-establishes its own selection).
                        self.lanes[lane_idx].selected = None;
                        self.lanes[lane_idx].ptr_at_stream = false;
                        self.schedule_lane(ctx, lane_idx);
                    }
                }
            }
            Activity::Poll { pos } => {
                if let Some(rx) = rx {
                    // A source we are already relaying from keeps its
                    // interrupt raised until its FIFO drains; only a *new*
                    // source (no active or parked job reading it) warrants
                    // a header read. A quarantined source (Half-Open
                    // probation) stays fenced off: this poll was only a
                    // probe, and its INT stays pending until readmission.
                    if rx.status_pending_interrupt()
                        && !self.source_busy(pos)
                        && !self.traffic_quarantined(pos)
                    {
                        self.lanes[lane_idx].activity = Some(Activity::Discover {
                            src_pos: pos,
                            header: Vec::with_capacity(STREAM_HEADER_BYTES),
                        });
                        self.continue_discover(ctx, lane_idx);
                        return;
                    }
                }
                self.release_owner(pos, lane_idx);
                self.schedule_lane(ctx, lane_idx);
            }
            Activity::Discover {
                src_pos,
                mut header,
            } => {
                let Some(rx) = rx else {
                    // Give up; the slave's interrupt stays pending and a
                    // later poll retries discovery. (Header bytes already
                    // popped are lost — a real 1-wire hazard under frame
                    // errors.)
                    self.release_owner(src_pos, lane_idx);
                    self.schedule_lane(ctx, lane_idx);
                    return;
                };
                if frame.cmd == Command::ReadData {
                    header.push(rx.data);
                    self.read_toggles[lane_idx][src_pos] = !self.read_toggles[lane_idx][src_pos];
                }
                if header.len() == STREAM_HEADER_BYTES {
                    self.finish_discovery(ctx, lane_idx, src_pos, &header);
                } else {
                    self.lanes[lane_idx].activity = Some(Activity::Discover { src_pos, header });
                    self.continue_discover(ctx, lane_idx);
                }
            }
            Activity::Job(mut job) => {
                let Some(rx) = rx else {
                    self.fail_job(ctx, lane_idx, job, "bus transaction retries exhausted");
                    self.schedule_lane(ctx, lane_idx);
                    return;
                };
                let mut flip_src = None;
                match frame.cmd {
                    Command::ReadData => {
                        job.buffer.push_back(rx.data);
                        job.read_done += 1;
                        job.chunk_left = job.chunk_left.saturating_sub(1);
                        flip_src = job.src_pos();
                    }
                    Command::WriteData => {
                        job.written += 1;
                    }
                    _ => {}
                }
                if let Some(pos) = flip_src {
                    self.read_toggles[lane_idx][pos] = !self.read_toggles[lane_idx][pos];
                }
                self.lanes[lane_idx].activity = Some(Activity::Job(job));
                self.continue_job(ctx, lane_idx);
            }
        }
    }

    // ------------------------------------------------------------------
    // Poll / discovery
    // ------------------------------------------------------------------

    /// Applies a completed (or permanently failed) DMA burst to the job on
    /// `lane` and keeps the job moving.
    fn advance_burst(
        &mut self,
        ctx: &mut Context<'_>,
        lane_idx: usize,
        kind: &InFlightKind,
        result: Option<Vec<u8>>,
    ) {
        let activity = self.lanes[lane_idx]
            .activity
            .take()
            .expect("burst outside any activity");
        let Activity::Job(mut job) = activity else {
            unreachable!("bursts only run inside relay jobs")
        };
        let Some(block) = result else {
            self.fail_job(ctx, lane_idx, job, "DMA burst retries exhausted");
            self.schedule_lane(ctx, lane_idx);
            return;
        };
        match kind {
            InFlightKind::DmaRead { .. } => {
                job.read_done += block.len();
                job.chunk_left = job.chunk_left.saturating_sub(block.len());
                job.buffer.extend(block);
            }
            InFlightKind::DmaWrite { bytes, .. } => {
                job.written += bytes.len();
            }
            InFlightKind::Frame(_) => unreachable!(),
        }
        self.lanes[lane_idx].activity = Some(Activity::Job(job));
        self.continue_job(ctx, lane_idx);
    }

    fn continue_discover(&mut self, ctx: &mut Context<'_>, lane_idx: usize) {
        let Some(Activity::Discover { src_pos, .. }) = &self.lanes[lane_idx].activity else {
            unreachable!("continue_discover outside discovery")
        };
        let src_pos = *src_pos;
        // The breaker can trip mid-discovery (a header-read retry sequence
        // exhausting): abandon the header, the INT stays pending and a
        // post-readmission poll restarts discovery from scratch.
        if self.traffic_quarantined(src_pos) {
            self.lanes[lane_idx].activity = None;
            self.release_owner(src_pos, lane_idx);
            let node = self.chain[src_pos].node().raw();
            self.obs.fast_fail(ctx.now(), node);
            self.schedule_lane(ctx, lane_idx);
            return;
        }
        let node = self.chain[src_pos].node();
        if self.lanes[lane_idx].selected != Some((node.raw(), AddressSpace::Memory)) {
            self.issue(ctx, lane_idx, TxFrame::select(node, false), 0);
        } else if !self.lanes[lane_idx].ptr_at_stream {
            self.issue(
                ctx,
                lane_idx,
                TxFrame::new(Command::SetPointer, STREAM_ADDR),
                0,
            );
        } else {
            let frame = self.stream_read_frame(lane_idx, src_pos);
            self.issue(ctx, lane_idx, frame, 0);
        }
    }

    /// Builds the next stream-FIFO read for the slave at `pos` on `lane`,
    /// carrying the port's current alternating-bit toggle in `DATA[0]`.
    fn stream_read_frame(&self, lane: usize, pos: usize) -> TxFrame {
        TxFrame::new(Command::ReadData, u8::from(self.read_toggles[lane][pos]))
    }

    fn finish_discovery(
        &mut self,
        ctx: &mut Context<'_>,
        lane_idx: usize,
        src_pos: usize,
        header: &[u8],
    ) {
        let src_node = self.chain[src_pos].node();
        let dst_byte = header[0];
        let total = usize::from(header[1]) << 8 | usize::from(header[2]);
        let (to, dst_pos, discard) = if dst_byte == DST_MASTER {
            (StreamEndpoint::Master, None, false)
        } else {
            match NodeId::new(dst_byte)
                .ok()
                .and_then(|n| self.positions.get(&n.raw()).map(|&p| (n, p)))
            {
                Some((node, pos)) => (StreamEndpoint::Slave(node), Some(pos), false),
                // Unknown destination: drain the payload from the FIFO (so
                // the stream stays framed) but discard it, then report the
                // failure to the sender.
                None => (StreamEndpoint::Master, None, true),
            }
        };
        let job = RelayJob {
            from: StreamEndpoint::Slave(src_node),
            to,
            source: JobSource::Fifo(src_pos),
            dst_pos,
            total,
            read_done: 0,
            written: 0,
            buffer: VecDeque::new(),
            chunk_left: usize::from(self.params.relay_chunk),
            writing: false,
            discard,
        };
        // Source is already owned by this lane; claim the destination too.
        if let Some(dst) = dst_pos {
            if dst != src_pos && !self.try_own(dst, lane_idx) {
                // Destination busy on another lane: park the job.
                self.release_owner(src_pos, lane_idx);
                self.jobs.push_back(job);
                self.schedule_lane(ctx, lane_idx);
                return;
            }
        }
        self.lanes[lane_idx].activity = Some(Activity::Job(job));
        self.continue_job(ctx, lane_idx);
    }

    // ------------------------------------------------------------------
    // Relay jobs
    // ------------------------------------------------------------------

    /// Drives the job state machine: issues the next transaction, delivers
    /// buffered bytes, completes or parks the job.
    ///
    /// Implemented decide-then-act: each iteration inspects the job under a
    /// short borrow, produces a [`JobStep`], then executes it with `self`
    /// free again.
    fn continue_job(&mut self, ctx: &mut Context<'_>, lane_idx: usize) {
        loop {
            let relay_chunk = usize::from(self.params.relay_chunk);
            let now = ctx.now();
            let jobs_waiting = !self.jobs.is_empty();
            let poll_due = now >= self.poll_due_at(lane_idx);

            // -------- decide --------
            let step = {
                let lane = &mut self.lanes[lane_idx];
                let Some(Activity::Job(job)) = &mut lane.activity else {
                    unreachable!("continue_job outside a job")
                };

                if !job.writing {
                    match &mut job.source {
                        JobSource::Local(data) => {
                            // Master-held bytes: "read" a chunk instantly.
                            let take = relay_chunk.min(data.len());
                            let taken: Vec<u8> = data.drain(..take).collect();
                            job.buffer.extend(taken);
                            job.read_done += take;
                            job.writing = true;
                            continue;
                        }
                        JobSource::Fifo(src_pos) => {
                            if job.read_done == job.total || job.chunk_left == 0 {
                                job.writing = true;
                                continue;
                            }
                            let remaining = job.total - job.read_done;
                            let dma = usize::from(self.params.dma_block);
                            if dma >= 2 && remaining >= 2 && job.chunk_left >= 2 {
                                JobStep::DmaRead {
                                    src_pos: *src_pos,
                                    k: remaining.min(job.chunk_left).min(dma),
                                }
                            } else {
                                JobStep::EnsureAndRead { src_pos: *src_pos }
                            }
                        }
                    }
                } else {
                    match job.to {
                        StreamEndpoint::Master => {
                            if job.buffer.is_empty() {
                                JobStep::ChunkBoundary
                            } else {
                                let bytes: Vec<u8> = job.buffer.drain(..).collect();
                                job.written += bytes.len();
                                JobStep::DeliverToMaster {
                                    from: job.from,
                                    bytes,
                                    end_of_message: job.written == job.total,
                                    discard: job.discard,
                                }
                            }
                        }
                        StreamEndpoint::Slave(dst_node) => {
                            let dma = usize::from(self.params.dma_block);
                            if dma >= 2 && job.buffer.len() >= 2 {
                                let take = job.buffer.len().min(dma);
                                let bytes: Vec<u8> = job.buffer.drain(..take).collect();
                                JobStep::DmaWrite {
                                    dst_pos: job.dst_pos.expect("slave destination has a position"),
                                    bytes,
                                }
                            } else if job.buffer.front().is_some() {
                                JobStep::EnsureAndWrite { dst_node }
                            } else {
                                JobStep::DrainInboundThenBoundary {
                                    from: job.from,
                                    to: job.to,
                                    dst_pos: job.dst_pos.expect("slave destination has a position"),
                                    end_of_message: job.written == job.total,
                                }
                            }
                        }
                    }
                }
            };

            // -------- act --------
            match step {
                JobStep::EnsureAndRead { src_pos } => {
                    if self.traffic_quarantined(src_pos) {
                        self.fast_fail_job(ctx, lane_idx, src_pos);
                        return;
                    }
                    let node = self.chain[src_pos].node();
                    if self.lanes[lane_idx].selected != Some((node.raw(), AddressSpace::Memory)) {
                        self.issue(ctx, lane_idx, TxFrame::select(node, false), 0);
                    } else if !self.lanes[lane_idx].ptr_at_stream {
                        self.issue(
                            ctx,
                            lane_idx,
                            TxFrame::new(Command::SetPointer, STREAM_ADDR),
                            0,
                        );
                    } else {
                        let frame = self.stream_read_frame(lane_idx, src_pos);
                        self.issue(ctx, lane_idx, frame, 0);
                    }
                    return;
                }
                JobStep::EnsureAndWrite { dst_node } => {
                    if let Some(&pos) = self.positions.get(&dst_node.raw()) {
                        if self.traffic_quarantined(pos) {
                            self.fast_fail_job(ctx, lane_idx, pos);
                            return;
                        }
                    }
                    if self.lanes[lane_idx].selected != Some((dst_node.raw(), AddressSpace::Memory))
                    {
                        self.issue(ctx, lane_idx, TxFrame::select(dst_node, false), 0);
                    } else if !self.lanes[lane_idx].ptr_at_stream {
                        self.issue(
                            ctx,
                            lane_idx,
                            TxFrame::new(Command::SetPointer, STREAM_ADDR),
                            0,
                        );
                    } else {
                        let Some(Activity::Job(job)) = &mut self.lanes[lane_idx].activity else {
                            unreachable!()
                        };
                        let byte = job.buffer.pop_front().expect("checked above");
                        self.issue(ctx, lane_idx, TxFrame::new(Command::WriteData, byte), 0);
                    }
                    return;
                }
                JobStep::DeliverToMaster {
                    from,
                    bytes,
                    end_of_message,
                    discard,
                } => {
                    if !discard {
                        let delivered = StreamDelivered {
                            from,
                            to: StreamEndpoint::Master,
                            bytes: Bytes::from(bytes),
                            end_of_message,
                        };
                        self.notify(ctx, StreamEndpoint::Master, delivered);
                    }
                    if self.finish_or_park(ctx, lane_idx, relay_chunk, jobs_waiting, poll_due) {
                        return;
                    }
                }
                JobStep::DrainInboundThenBoundary {
                    from,
                    to,
                    dst_pos,
                    end_of_message,
                } => {
                    let arrived = self.chain[dst_pos].take_inbound();
                    if !arrived.is_empty() {
                        let delivered = StreamDelivered {
                            from,
                            to,
                            bytes: Bytes::from(arrived),
                            end_of_message,
                        };
                        self.notify(ctx, to, delivered);
                    }
                    if self.finish_or_park(ctx, lane_idx, relay_chunk, jobs_waiting, poll_due) {
                        return;
                    }
                }
                JobStep::ChunkBoundary => {
                    if self.finish_or_park(ctx, lane_idx, relay_chunk, jobs_waiting, poll_due) {
                        return;
                    }
                }
                JobStep::DmaRead { src_pos, k } => {
                    if self.traffic_quarantined(src_pos) {
                        self.fast_fail_job(ctx, lane_idx, src_pos);
                        return;
                    }
                    self.issue_burst(ctx, lane_idx, InFlightKind::DmaRead { pos: src_pos, k }, 0);
                    return;
                }
                JobStep::DmaWrite { dst_pos, bytes } => {
                    if self.traffic_quarantined(dst_pos) {
                        self.fast_fail_job(ctx, lane_idx, dst_pos);
                        return;
                    }
                    self.issue_burst(
                        ctx,
                        lane_idx,
                        InFlightKind::DmaWrite {
                            pos: dst_pos,
                            bytes,
                        },
                        0,
                    );
                    return;
                }
            }
        }
    }

    /// Chunk-boundary handling: completes a finished job, parks the job if
    /// other work waits, or opens the next service slot. Returns `true` if
    /// the lane was handed off (caller must stop driving this job).
    fn finish_or_park(
        &mut self,
        ctx: &mut Context<'_>,
        lane_idx: usize,
        relay_chunk: usize,
        jobs_waiting: bool,
        poll_due: bool,
    ) -> bool {
        let done = {
            let Some(Activity::Job(job)) = &self.lanes[lane_idx].activity else {
                unreachable!()
            };
            job.written == job.total
        };
        if done {
            let Some(Activity::Job(job)) = self.lanes[lane_idx].activity.take() else {
                unreachable!()
            };
            self.complete_job(ctx, lane_idx, job);
            self.schedule_lane(ctx, lane_idx);
            return true;
        }
        // Open the next service slot.
        {
            let Some(Activity::Job(job)) = &mut self.lanes[lane_idx].activity else {
                unreachable!()
            };
            job.chunk_left = relay_chunk;
            job.writing = false;
        }
        // Fairness: if other work is waiting, park this job.
        if jobs_waiting || poll_due {
            let Some(Activity::Job(job)) = self.lanes[lane_idx].activity.take() else {
                unreachable!()
            };
            if let Some(p) = job.src_pos() {
                self.release_owner(p, lane_idx);
            }
            if let Some(p) = job.dst_pos {
                self.release_owner(p, lane_idx);
            }
            self.jobs.push_back(job);
            self.schedule_lane(ctx, lane_idx);
            return true;
        }
        false
    }

    fn complete_job(&mut self, ctx: &mut Context<'_>, lane_idx: usize, job: RelayJob) {
        if let Some(p) = job.src_pos() {
            self.release_owner(p, lane_idx);
        }
        if let Some(p) = job.dst_pos {
            self.release_owner(p, lane_idx);
        }
        if job.discard {
            self.obs.message_failed();
            let failed = StreamFailed {
                from: job.from,
                to: None,
                reason: "stream header named an unknown destination".to_owned(),
                fast: false,
            };
            self.notify(ctx, job.from, failed);
        } else {
            self.obs.message_relayed(job.total as u64);
            if job.total == 0 {
                // Empty payloads never pass through the write loop, so the
                // destination still deserves its (empty) delivery event.
                let delivered = StreamDelivered {
                    from: job.from,
                    to: job.to,
                    bytes: Bytes::new(),
                    end_of_message: true,
                };
                self.notify(ctx, job.to, delivered);
            }
            let sent = StreamSent {
                from: job.from,
                to: job.to,
                len: job.total,
            };
            self.notify(ctx, job.from, sent);
        }
    }

    fn fail_job(&mut self, ctx: &mut Context<'_>, lane_idx: usize, job: RelayJob, reason: &str) {
        if let Some(p) = job.src_pos() {
            self.release_owner(p, lane_idx);
        }
        if let Some(p) = job.dst_pos {
            self.release_owner(p, lane_idx);
        }
        self.obs.message_failed();
        // The failure is "fast" when supervision fenced one of the job's
        // endpoints off — the caller learned quickly and cheaply, not by
        // burning the full retry/backoff schedule.
        let fast = job
            .src_pos()
            .into_iter()
            .chain(job.dst_pos)
            .any(|p| self.traffic_quarantined(p));
        let failed = StreamFailed {
            from: job.from,
            to: Some(job.to),
            reason: reason.to_owned(),
            fast,
        };
        self.notify(ctx, job.from, failed);
    }

    // ------------------------------------------------------------------
    // Lane scheduling
    // ------------------------------------------------------------------

    /// Whether some relay work (parked or on any lane) is already consuming
    /// the outbound FIFO of the slave at `pos`.
    fn source_busy(&self, pos: usize) -> bool {
        if self.jobs.iter().any(|j| j.src_pos() == Some(pos)) {
            return true;
        }
        self.lanes.iter().any(|lane| match &lane.activity {
            Some(Activity::Discover { src_pos, .. }) => *src_pos == pos,
            Some(Activity::Job(job)) => job.src_pos() == Some(pos),
            _ => false,
        })
    }

    fn try_own(&mut self, pos: usize, lane_idx: usize) -> bool {
        match self.owners[pos] {
            None => {
                self.owners[pos] = Some(lane_idx);
                true
            }
            Some(owner) => owner == lane_idx,
        }
    }

    fn release_owner(&mut self, pos: usize, lane_idx: usize) {
        if self.owners[pos] == Some(lane_idx) {
            self.owners[pos] = None;
        }
    }

    /// Picks the next activity for an idle lane, or arms the poll timer.
    fn schedule_lane(&mut self, ctx: &mut Context<'_>, lane_idx: usize) {
        debug_assert!(self.lanes[lane_idx].activity.is_none());
        debug_assert!(self.lanes[lane_idx].in_flight.is_none());

        // Chain-wide broadcasts first: control actions preempt data.
        if let Some(command) = self.broadcasts.pop_front() {
            self.lanes[lane_idx].activity = Some(Activity::Broadcast {
                pending_command: Some(command),
            });
            self.issue(ctx, lane_idx, TxFrame::select(NodeId::BROADCAST, false), 0);
            return;
        }

        // Periodic polls take priority when due, so new flows keep being
        // discovered under load. (The INT hint alone must NOT preempt jobs:
        // sources being relayed keep their interrupt raised, so it would
        // starve the very transfers it announced.)
        if ctx.now() >= self.poll_due_at(lane_idx) {
            if let Some(pos) = self.next_poll_target(ctx.now(), lane_idx) {
                self.start_poll(ctx, lane_idx, pos);
                return;
            } else if self.supervisor.is_some() {
                // Every candidate is fenced off (Open breakers, foreign
                // lanes): push the deadline one idle-poll period forward so
                // the poll timer cannot spin at zero simulated cost while
                // the quarantine windows run down.
                let due = ctx.now() + self.params.bits_to_time(self.params.idle_poll_bits);
                self.set_poll_due(lane_idx, due);
            }
        }

        // Resume a parked job whose endpoints are free.
        let mut picked: Option<usize> = None;
        for (i, job) in self.jobs.iter().enumerate() {
            let free = |p: usize| self.owners[p].is_none() || self.owners[p] == Some(lane_idx);
            if job.src_pos().is_none_or(free) && job.dst_pos.is_none_or(free) {
                picked = Some(i);
                break;
            }
        }
        if let Some(i) = picked {
            let job = self.jobs.remove(i).expect("index from enumerate");
            if let Some(p) = job.src_pos() {
                let owned = self.try_own(p, lane_idx);
                debug_assert!(owned);
            }
            if let Some(p) = job.dst_pos {
                let owned = self.try_own(p, lane_idx);
                debug_assert!(owned);
            }
            self.lanes[lane_idx].activity = Some(Activity::Job(job));
            self.continue_job(ctx, lane_idx);
            return;
        }

        // No job runnable: an INT edge wakes the poller early (the
        // idle-discovery fast path) — but only when no job is parked.
        // A parked job keeps its source's INT raised, and in multi-lane
        // wirings eager INT-polls from one lane can transiently own the
        // very slave another lane's job resume needs, livelocking the
        // lanes into polling each other's endpoints forever. Parked jobs
        // rely on the periodic poll for new-source discovery instead.
        if self.int_seen && self.jobs.is_empty() {
            if let Some(pos) = self.next_poll_target(ctx.now(), lane_idx) {
                self.start_poll(ctx, lane_idx, pos);
                return;
            }
        }

        // Nothing to do: close this lane's busy interval, arm the timer.
        if let Some(since) = self.lanes[lane_idx].busy_since.take() {
            let span = ctx.now().saturating_duration_since(since);
            self.obs.lane_busy(lane_idx, span);
        }
        if !self.poll_timer_armed {
            self.poll_timer_armed = true;
            let due = self.earliest_poll_due().max(ctx.now());
            let self_id = ctx.self_id();
            ctx.schedule_at(due, self_id, PollTimer);
        }
    }

    /// The poll deadline `lane_idx` is held to: the shared bus-wide one
    /// normally, the lane's own when supervision is on (see
    /// [`lane_poll_due`](TpWireBus::lane_poll_due)).
    fn poll_due_at(&self, lane_idx: usize) -> SimTime {
        if self.supervisor.is_some() {
            self.lane_poll_due[lane_idx]
        } else {
            self.next_poll_due
        }
    }

    /// Sets `lane_idx`'s poll deadline (the shared one when unsupervised).
    fn set_poll_due(&mut self, lane_idx: usize, due: SimTime) {
        if self.supervisor.is_some() {
            self.lane_poll_due[lane_idx] = due;
        } else {
            self.next_poll_due = due;
        }
    }

    /// The earliest pending poll deadline across lanes — what the idle
    /// poll timer must be armed for.
    fn earliest_poll_due(&self) -> SimTime {
        if self.supervisor.is_some() {
            self.lane_poll_due
                .iter()
                .copied()
                .min()
                .unwrap_or(self.next_poll_due)
        } else {
            self.next_poll_due
        }
    }

    /// Finds the next pollable slave position (round-robin, skipping slaves
    /// owned by other lanes). Returns `None` when every candidate is busy.
    ///
    /// Under supervision the scan additionally honours the [`WirePlan`]
    /// (each lane polls only the positions currently assigned to it) and
    /// consults the breaker: Open slaves are skipped entirely until their
    /// window expires, Half-Open ones are admitted as probes within the
    /// probe budget. Keep-alive polls double as the probe vehicle — a
    /// `SelectNode` round-trip is the cheapest transaction the bus has.
    fn next_poll_target(&mut self, now: SimTime, lane_idx: usize) -> Option<usize> {
        let n = self.chain.len();
        for step in 0..n {
            let pos = (self.poll_cursor + step) % n;
            if self.owners[pos].is_some() && self.owners[pos] != Some(lane_idx) {
                continue;
            }
            if let Some(sup) = self.supervisor.as_mut() {
                if usize::from(sup.poll_lane_of(pos)) != lane_idx {
                    continue;
                }
                let (admission, transition) = sup.admit_poll(now, pos);
                if let Some(tr) = transition {
                    let node = self.chain[pos].node().raw();
                    self.obs.breaker_transition(now, node, tr.from, tr.to);
                }
                if admission == Admission::FastFail {
                    continue;
                }
            }
            self.poll_cursor = (pos + 1) % n;
            return Some(pos);
        }
        None
    }

    fn start_poll(&mut self, ctx: &mut Context<'_>, lane_idx: usize, pos: usize) {
        self.obs.poll();
        // Each poll consumes the INT latch; a still-pending slave re-raises
        // it on the next RX frame that passes it.
        self.int_seen = false;
        let due = ctx.now() + self.params.bits_to_time(self.params.idle_poll_bits);
        self.set_poll_due(lane_idx, due);
        let owned = self.try_own(pos, lane_idx);
        debug_assert!(owned, "poll target ownership checked by caller");
        self.lanes[lane_idx].activity = Some(Activity::Poll { pos });
        let node = self.chain[pos].node();
        self.issue(ctx, lane_idx, TxFrame::select(node, false), 0);
    }

    fn kick_idle_lanes(&mut self, ctx: &mut Context<'_>) {
        for lane_idx in 0..self.lanes.len() {
            if self.lanes[lane_idx].activity.is_none() && self.lanes[lane_idx].in_flight.is_none() {
                self.schedule_lane(ctx, lane_idx);
            }
        }
    }
}

impl Component for TpWireBus {
    fn start(&mut self, ctx: &mut Context<'_>) {
        // Begin the keep-alive poll cycle immediately.
        self.kick_idle_lanes(ctx);
    }

    fn handle(&mut self, ctx: &mut Context<'_>, msg: Box<dyn Message>) {
        let msg = match msg.downcast::<TxnComplete>() {
            Ok(done) => {
                let TxnComplete { lane, outcome } = *done;
                self.on_txn_complete(ctx, lane, outcome);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<PollTimer>() {
            Ok(_) => {
                self.poll_timer_armed = false;
                self.kick_idle_lanes(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RetryFrame>() {
            Ok(retry) => {
                let RetryFrame {
                    lane,
                    frame,
                    attempts,
                } = *retry;
                self.issue(ctx, lane, frame, attempts);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RetryBurst>() {
            Ok(retry) => {
                let RetryBurst {
                    lane,
                    kind,
                    attempts,
                } = *retry;
                self.issue_burst(ctx, lane, kind, attempts);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<FaultCommand>() {
            Ok(cmd) => {
                self.apply_fault(ctx, cmd.0);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<SendStream>() {
            Ok(send) => {
                let SendStream { from, to, payload } = *send;
                assert!(
                    payload.len() <= MAX_STREAM_PAYLOAD,
                    "stream payload exceeds {MAX_STREAM_PAYLOAD} bytes"
                );
                let Some(&pos) = self.positions.get(&from.raw()) else {
                    panic!("SendStream from {from}, which is not on this chain");
                };
                let dst_byte = match to {
                    StreamEndpoint::Master => DST_MASTER,
                    StreamEndpoint::Slave(node) => node.raw(),
                };
                let len = payload.len();
                let header = [dst_byte, (len >> 8) as u8, (len & 0xFF) as u8];
                self.chain[pos].push_outbound(header);
                self.chain[pos].push_outbound(payload.iter().copied());
                // The non-empty FIFO raises the slave's interrupt; treat the
                // (out-of-band) enqueue as an INT edge so an idle master
                // polls promptly.
                self.int_seen = true;
                self.kick_idle_lanes(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<BroadcastCommand>() {
            Ok(broadcast) => {
                self.broadcasts.push_back(broadcast.command);
                self.kick_idle_lanes(ctx);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<MasterSend>() {
            Ok(send) => {
                let MasterSend { to, payload } = *send;
                assert!(
                    payload.len() <= MAX_STREAM_PAYLOAD,
                    "stream payload exceeds {MAX_STREAM_PAYLOAD} bytes"
                );
                let Some(&pos) = self.positions.get(&to.raw()) else {
                    panic!("MasterSend to {to}, which is not on this chain");
                };
                let job = RelayJob {
                    from: StreamEndpoint::Master,
                    to: StreamEndpoint::Slave(to),
                    source: JobSource::Local(payload.iter().copied().collect()),
                    dst_pos: Some(pos),
                    total: payload.len(),
                    read_done: 0,
                    written: 0,
                    buffer: VecDeque::new(),
                    chunk_left: 0,
                    writing: false,
                    discard: false,
                };
                self.jobs.push_back(job);
                self.kick_idle_lanes(ctx);
            }
            Err(other) => {
                panic!("TpWireBus received unexpected message {other:?}");
            }
        }
    }
}
