//! # tsbus-tpwire — the TpWIRE embedded serial bus, modeled bit-exactly
//!
//! TpWIRE (Theseus Programmable Wires) is the low-cost daisy-chained
//! master/slave serial bus of the paper *"Estimation of Bus Performance for
//! a Tuplespace in an Embedded Architecture"* (DATE 2003). This crate
//! implements it in layers:
//!
//! * [`crc`] — CRC-4 with polynomial x⁴ + x + 1 (property-tested against a
//!   long-division reference; detects all single-bit and ≤4-bit burst
//!   errors).
//! * [`TxFrame`] / [`RxFrame`] — bit-exact 16-bit frame encode/decode
//!   (paper Tables 1–2).
//! * [`NodeId`] / [`AddressSpace`] / [`SystemReg`] — the 127-node + broadcast
//!   addressing model with the dual address spaces.
//! * [`SlaveDevice`] — the slave state machine: selection, memory/pointer,
//!   system registers, the stream FIFO, the 2048-bit-period self-reset.
//! * [`Wiring`] / [`BusParams`] — programmable bit rate, protocol latencies
//!   and the two §3.2 *n*-wire scaling modes (parallel data lines vs
//!   parallel buses).
//! * [`TpWireBus`] — the discrete-event bus component: honest master
//!   scheduling (keep-alive polls, INT-accelerated discovery, chunked relay
//!   with fairness), retries/timeouts and frame-error injection.
//! * [`analytic`] — an independent closed-form timing model standing in for
//!   the TpICU/SCM hardware the paper validates against.
//!
//! ## Example: frame round-trip
//!
//! ```
//! use tsbus_tpwire::{Command, TxFrame};
//!
//! let frame = TxFrame::new(Command::WriteData, 0x5A);
//! let wire = frame.encode();
//! assert_eq!(TxFrame::decode(wire)?, frame);
//! # Ok::<(), tsbus_tpwire::DecodeFrameError>(())
//! ```
//!
//! ## Example: timing a transaction
//!
//! ```
//! use tsbus_tpwire::BusParams;
//!
//! let params = BusParams::theseus_default(); // 8 Mbit/s, 1-wire
//! // A transaction with the 2nd slave in the chain:
//! let t = params.transaction_time(2);
//! assert_eq!(t.as_micros_f64(), 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
mod bus;
pub mod crc;
mod frame;
pub mod instrument;
mod node;
mod slave;
mod supervisor;
mod wiring;

pub use bus::{
    BroadcastCommand, MasterSend, SendStream, StreamDelivered, StreamEndpoint, StreamFailed,
    StreamSent, TpWireBus, MAX_STREAM_PAYLOAD, STREAM_HEADER_BYTES,
};
pub use frame::{Command, DecodeFrameError, RxFrame, RxType, TxFrame, FRAME_BITS};
pub use instrument::{BusInstruments, BusStats};
pub use node::{AddressSpace, InvalidNodeId, NodeId, SystemReg, MAX_NODE_ID};
pub use slave::{SlaveDevice, MEMORY_BYTES, STREAM_ADDR};
pub use wiring::{
    BusParams, InvalidWiring, WirePlan, Wiring, RESET_ACTIVE_BITS, RESET_TIMEOUT_BITS,
};
