//! End-to-end tests of the discrete-event TpWIRE bus: stream relay through
//! the master, discovery over the wire, n-wire scaling, error injection and
//! cross-validation against the analytic timing model.

use bytes::Bytes;
use tsbus_des::{
    Component, ComponentId, Context, Message, MessageExt, SimDuration, SimTime, Simulator,
};
use tsbus_tpwire::{
    analytic, BusParams, MasterSend, NodeId, SendStream, StreamDelivered, StreamEndpoint,
    StreamSent, TpWireBus, Wiring,
};

/// An attachment that records everything the bus tells it.
#[derive(Default)]
struct Recorder {
    delivered: Vec<u8>,
    messages: Vec<(StreamEndpoint, Vec<u8>)>,
    current: Vec<u8>,
    completions: Vec<(SimTime, usize)>,
    first_delivery: Option<SimTime>,
    last_delivery: Option<SimTime>,
}

impl Component for Recorder {
    fn handle(&mut self, ctx: &mut Context<'_>, msg: Box<dyn Message>) {
        let msg = match msg.downcast::<StreamDelivered>() {
            Ok(d) => {
                self.delivered.extend_from_slice(&d.bytes);
                self.current.extend_from_slice(&d.bytes);
                self.first_delivery.get_or_insert(ctx.now());
                self.last_delivery = Some(ctx.now());
                if d.end_of_message {
                    let whole = std::mem::take(&mut self.current);
                    self.messages.push((d.from, whole));
                }
                return;
            }
            Err(m) => m,
        };
        if let Ok(sent) = msg.downcast::<StreamSent>() {
            self.completions.push((ctx.now(), sent.len));
        }
    }
}

fn node(id: u8) -> NodeId {
    NodeId::new(id).expect("valid test node id")
}

/// Builds a sim with a bus of `n` slaves (ids 1..=n) and one recorder per
/// slave plus a master recorder. Returns (sim, bus id, recorder ids).
fn build(params: BusParams, n: u8) -> (Simulator, ComponentId, Vec<ComponentId>, ComponentId) {
    let mut sim = Simulator::with_seed(42);
    let recorders: Vec<ComponentId> = (1..=n)
        .map(|i| sim.add_component(format!("rec{i}"), Recorder::default()))
        .collect();
    let master_rec = sim.add_component("rec_master", Recorder::default());
    let chain: Vec<NodeId> = (1..=n).map(node).collect();
    let mut bus = TpWireBus::new(params, chain);
    for (i, &rec) in recorders.iter().enumerate() {
        bus.attach(node(i as u8 + 1), rec);
    }
    bus.attach_master(master_rec);
    let bus_id = sim.add_component("bus", bus);
    (sim, bus_id, recorders, master_rec)
}

#[test]
fn single_message_arrives_intact() {
    let (mut sim, bus, recs, _) = build(BusParams::theseus_default(), 4);
    let payload: Vec<u8> = (0..=255).collect();
    sim.with_context(|ctx| {
        ctx.send(
            bus,
            SendStream {
                from: node(1),
                to: StreamEndpoint::Slave(node(3)),
                payload: Bytes::from(payload.clone()),
            },
        );
    });
    sim.run_until(SimTime::from_secs(1));
    let rec: &Recorder = sim.component(recs[2]).expect("registered");
    assert_eq!(rec.delivered, payload);
    assert_eq!(rec.messages.len(), 1);
    assert_eq!(rec.messages[0].0, StreamEndpoint::Slave(node(1)));
    // The sender was told exactly once.
    let sender: &Recorder = sim.component(recs[0]).expect("registered");
    assert_eq!(sender.completions.len(), 1);
    assert_eq!(sender.completions[0].1, payload.len());
}

#[test]
fn relay_time_matches_analytic_model_within_tolerance() {
    // Uncontended transfer: the DES time should sit within a few percent of
    // the closed-form model (extra cost: at most one pre-transfer idle poll
    // and poll-interval interleaving).
    let params = BusParams::theseus_default();
    let (mut sim, bus, recs, _) = build(params, 4);
    let len = 512usize;
    let payload = vec![0xA5u8; len];
    let start = SimTime::from_nanos(1); // after the t=0 poll burst settles
    sim.with_context(|ctx| {
        ctx.schedule_at(
            start,
            bus,
            SendStream {
                from: node(1),
                to: StreamEndpoint::Slave(node(3)),
                payload: Bytes::from(payload),
            },
        );
    });
    sim.run_until(SimTime::from_secs(1));
    let rec: &Recorder = sim.component(recs[2]).expect("registered");
    let finished = rec.last_delivery.expect("message delivered");
    let measured = finished.duration_since(start).as_secs_f64();
    let predicted = analytic::message_relay_time(&params, 0, 2, len).as_secs_f64();
    let ratio = measured / predicted;
    assert!(
        (0.95..1.35).contains(&ratio),
        "DES {measured}s vs analytic {predicted}s (ratio {ratio})"
    );
}

#[test]
fn messages_to_master_are_delivered() {
    let (mut sim, bus, _, master_rec) = build(BusParams::theseus_default(), 2);
    sim.with_context(|ctx| {
        ctx.send(
            bus,
            SendStream {
                from: node(2),
                to: StreamEndpoint::Master,
                payload: Bytes::from_static(b"to the master"),
            },
        );
    });
    sim.run_until(SimTime::from_millis(100));
    let rec: &Recorder = sim.component(master_rec).expect("registered");
    assert_eq!(rec.delivered, b"to the master");
    assert_eq!(rec.messages.len(), 1);
}

#[test]
fn master_send_reaches_slave() {
    let (mut sim, bus, recs, _) = build(BusParams::theseus_default(), 2);
    sim.with_context(|ctx| {
        ctx.send(
            bus,
            MasterSend {
                to: node(2),
                payload: Bytes::from_static(b"hello from the master"),
            },
        );
    });
    sim.run_until(SimTime::from_millis(100));
    let rec: &Recorder = sim.component(recs[1]).expect("registered");
    assert_eq!(rec.delivered, b"hello from the master");
    assert_eq!(rec.messages[0].0, StreamEndpoint::Master);
}

#[test]
fn empty_payload_still_signals_end_of_message() {
    let (mut sim, bus, recs, _) = build(BusParams::theseus_default(), 2);
    sim.with_context(|ctx| {
        ctx.send(
            bus,
            SendStream {
                from: node(1),
                to: StreamEndpoint::Slave(node(2)),
                payload: Bytes::new(),
            },
        );
    });
    sim.run_until(SimTime::from_millis(100));
    let rec: &Recorder = sim.component(recs[1]).expect("registered");
    assert_eq!(rec.messages.len(), 1);
    assert!(rec.messages[0].1.is_empty());
}

#[test]
fn two_flows_interleave_and_both_complete() {
    let (mut sim, bus, recs, _) = build(BusParams::theseus_default(), 4);
    let a = vec![1u8; 300];
    let b = vec![2u8; 300];
    sim.with_context(|ctx| {
        ctx.send(
            bus,
            SendStream {
                from: node(1),
                to: StreamEndpoint::Slave(node(3)),
                payload: Bytes::from(a.clone()),
            },
        );
        ctx.send(
            bus,
            SendStream {
                from: node(2),
                to: StreamEndpoint::Slave(node(4)),
                payload: Bytes::from(b.clone()),
            },
        );
    });
    sim.run_until(SimTime::from_secs(1));
    let rec3: &Recorder = sim.component(recs[2]).expect("registered");
    let rec4: &Recorder = sim.component(recs[3]).expect("registered");
    assert_eq!(rec3.delivered, a);
    assert_eq!(rec4.delivered, b);
    // Interleaving: the second flow must start delivering before the first
    // finishes (chunked fairness), not strictly after.
    let first_done = rec3.last_delivery.expect("flow 1 done");
    let second_start = rec4.first_delivery.expect("flow 2 started");
    assert!(
        second_start < first_done,
        "flows must share the bus: flow2 started {second_start}, flow1 done {first_done}"
    );
}

#[test]
fn background_flow_slows_foreground_flow() {
    // The Table 4 mechanism in miniature: the same transfer takes longer
    // when a competing flow loads the bus.
    let run = |with_background: bool| -> SimDuration {
        let (mut sim, bus, recs, _) = build(BusParams::theseus_default(), 4);
        let start = SimTime::from_nanos(1);
        sim.with_context(|ctx| {
            ctx.schedule_at(
                start,
                bus,
                SendStream {
                    from: node(1),
                    to: StreamEndpoint::Slave(node(3)),
                    payload: Bytes::from(vec![7u8; 400]),
                },
            );
            if with_background {
                ctx.schedule_at(
                    start,
                    bus,
                    SendStream {
                        from: node(2),
                        to: StreamEndpoint::Slave(node(4)),
                        payload: Bytes::from(vec![9u8; 400]),
                    },
                );
            }
        });
        sim.run_until(SimTime::from_secs(1));
        let rec: &Recorder = sim.component(recs[2]).expect("registered");
        rec.last_delivery
            .expect("foreground delivered")
            .duration_since(start)
    };
    let alone = run(false);
    let contended = run(true);
    assert!(
        contended > alone.mul_f64(1.5),
        "contention must slow the transfer: alone {alone}, contended {contended}"
    );
}

#[test]
fn parallel_buses_run_flows_concurrently() {
    let single = BusParams::theseus_default();
    let dual = single.with_wiring(Wiring::parallel_buses(2).expect("valid"));
    let run = |params: BusParams| -> SimDuration {
        let (mut sim, bus, recs, _) = build(params, 4);
        let start = SimTime::from_nanos(1);
        sim.with_context(|ctx| {
            for (src, dst) in [(1u8, 3u8), (2, 4)] {
                ctx.schedule_at(
                    start,
                    bus,
                    SendStream {
                        from: node(src),
                        to: StreamEndpoint::Slave(node(dst)),
                        payload: Bytes::from(vec![src; 400]),
                    },
                );
            }
        });
        sim.run_until(SimTime::from_secs(1));
        let done3 = sim
            .component::<Recorder>(recs[2])
            .expect("registered")
            .last_delivery
            .expect("flow 1 done");
        let done4 = sim
            .component::<Recorder>(recs[3])
            .expect("registered")
            .last_delivery
            .expect("flow 2 done");
        done3.max(done4).duration_since(start)
    };
    let t1 = run(single);
    let t2 = run(dual);
    assert!(
        t2.as_secs_f64() < t1.as_secs_f64() * 0.7,
        "two buses must parallelize two flows: 1-wire {t1}, 2-bus {t2}"
    );
}

#[test]
fn parallel_data_mode_shortens_transfers() {
    let single = BusParams::theseus_default();
    let dual = single.with_wiring(Wiring::parallel_data(2).expect("valid"));
    let run = |params: BusParams| -> SimDuration {
        let (mut sim, bus, recs, _) = build(params, 4);
        let start = SimTime::from_nanos(1);
        sim.with_context(|ctx| {
            ctx.schedule_at(
                start,
                bus,
                SendStream {
                    from: node(1),
                    to: StreamEndpoint::Slave(node(3)),
                    payload: Bytes::from(vec![1u8; 400]),
                },
            );
        });
        sim.run_until(SimTime::from_secs(1));
        sim.component::<Recorder>(recs[2])
            .expect("registered")
            .last_delivery
            .expect("delivered")
            .duration_since(start)
    };
    let t1 = run(single).as_secs_f64();
    let t2 = run(dual).as_secs_f64();
    let speedup = t1 / t2;
    assert!(
        (1.2..2.0).contains(&speedup),
        "mode-A speedup {speedup} outside the 'almost double' band"
    );
}

#[test]
fn frame_errors_cost_retries_but_streams_survive() {
    // A modest error rate: retries mask the losses and the payload still
    // arrives complete (per-frame retry, chunked FIFO discipline).
    let params = BusParams::theseus_default().with_frame_error_rate(0.02);
    let (mut sim, bus, recs, _) = build(params, 2);
    let payload = vec![0x55u8; 200];
    sim.with_context(|ctx| {
        ctx.send(
            bus,
            SendStream {
                from: node(1),
                to: StreamEndpoint::Slave(node(2)),
                payload: Bytes::from(payload.clone()),
            },
        );
    });
    sim.run_until(SimTime::from_secs(1));
    let bus_ref: &TpWireBus = sim.component(bus).expect("registered");
    assert!(
        bus_ref.stats().retries > 0,
        "2% frame errors must trigger retries"
    );
    let rec: &Recorder = sim.component(recs[1]).expect("registered");
    // Retries re-execute commands, so FIFO bytes may duplicate or drop in
    // degenerate cases; with per-frame retries and a 2% rate, the stream
    // should still complete at the right length the vast majority of seeds.
    assert_eq!(rec.delivered.len(), payload.len());
}

#[test]
fn keep_alive_polling_prevents_slave_resets() {
    let params = BusParams::theseus_default();
    let (mut sim, bus, _, _) = build(params, 4);
    // A long idle stretch: polls must keep every slave's watchdog fed.
    sim.run_until(SimTime::from_secs(2));
    let bus_ref: &TpWireBus = sim.component(bus).expect("registered");
    for id in 1..=4u8 {
        let slave = bus_ref.slave(node(id)).expect("on chain");
        assert_eq!(
            slave.reset_count(),
            0,
            "slave {id} reset despite keep-alive polling"
        );
    }
    assert!(bus_ref.stats().polls > 100, "polling should be periodic");
}

#[test]
fn bus_utilization_rises_under_load() {
    let params = BusParams::theseus_default();
    let (mut sim, bus, _, _) = build(params, 2);
    let idle_util = {
        sim.run_until(SimTime::from_millis(10));
        let b: &TpWireBus = sim.component(bus).expect("registered");
        b.lane_utilization(0, sim.now())
    };
    sim.with_context(|ctx| {
        ctx.send(
            bus,
            SendStream {
                from: node(1),
                to: StreamEndpoint::Slave(node(2)),
                payload: Bytes::from(vec![0u8; 4000]),
            },
        );
    });
    sim.run_until(SimTime::from_millis(20));
    let b: &TpWireBus = sim.component(bus).expect("registered");
    let busy_util = b.lane_utilization(0, sim.now());
    assert!(
        busy_util > idle_util,
        "load must raise utilization ({idle_util} → {busy_util})"
    );
    assert!(
        busy_util > 0.5,
        "a saturating transfer should keep the lane busy"
    );
}

#[test]
fn back_to_back_messages_preserve_order_and_framing() {
    let (mut sim, bus, recs, _) = build(BusParams::theseus_default(), 2);
    sim.with_context(|ctx| {
        for i in 0..5u8 {
            ctx.send(
                bus,
                SendStream {
                    from: node(1),
                    to: StreamEndpoint::Slave(node(2)),
                    payload: Bytes::from(vec![i; 10 + usize::from(i)]),
                },
            );
        }
    });
    sim.run_until(SimTime::from_secs(1));
    let rec: &Recorder = sim.component(recs[1]).expect("registered");
    assert_eq!(rec.messages.len(), 5, "five distinct messages");
    for (i, (_, bytes)) in rec.messages.iter().enumerate() {
        assert_eq!(bytes.len(), 10 + i);
        assert!(bytes.iter().all(|&b| b == i as u8), "message {i} intact");
    }
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let (mut sim, bus, recs, _) = build(BusParams::theseus_default(), 4);
        sim.with_context(|ctx| {
            ctx.send(
                bus,
                SendStream {
                    from: node(1),
                    to: StreamEndpoint::Slave(node(3)),
                    payload: Bytes::from(vec![3u8; 123]),
                },
            );
        });
        sim.run_until(SimTime::from_millis(50));
        let rec: &Recorder = sim.component(recs[2]).expect("registered");
        (
            rec.last_delivery,
            sim.events_processed(),
            sim.component::<TpWireBus>(bus)
                .expect("registered")
                .stats()
                .transactions,
        )
    };
    assert_eq!(run(), run(), "same seed, same topology, same trace");
}

#[test]
fn dma_bursts_deliver_intact_payloads() {
    let params = BusParams::theseus_default()
        .with_dma_block(32)
        .with_relay_chunk(64);
    let (mut sim, bus, recs, _) = build(params, 2);
    let payload: Vec<u8> = (0..=255).collect();
    sim.with_context(|ctx| {
        ctx.send(
            bus,
            SendStream {
                from: node(1),
                to: StreamEndpoint::Slave(node(2)),
                payload: Bytes::from(payload.clone()),
            },
        );
    });
    sim.run_until(SimTime::from_millis(100));
    let rec: &Recorder = sim.component(recs[1]).expect("registered");
    assert_eq!(rec.delivered, payload, "DMA relay must be byte-exact");
    assert_eq!(rec.messages.len(), 1);
}

#[test]
fn dma_bursts_are_faster_than_per_byte_relay() {
    let run = |params: BusParams| -> SimDuration {
        let (mut sim, bus, recs, _) = build(params, 2);
        let start = SimTime::from_nanos(1);
        sim.with_context(|ctx| {
            ctx.schedule_at(
                start,
                bus,
                SendStream {
                    from: node(1),
                    to: StreamEndpoint::Slave(node(2)),
                    payload: Bytes::from(vec![0xEEu8; 512]),
                },
            );
        });
        sim.run_until(SimTime::from_secs(1));
        sim.component::<Recorder>(recs[1])
            .expect("registered")
            .last_delivery
            .expect("delivered")
            .duration_since(start)
    };
    let base = BusParams::theseus_default().with_relay_chunk(32);
    let plain = run(base);
    let dma = run(base.with_dma_block(32));
    let speedup = plain.as_secs_f64() / dma.as_secs_f64();
    assert!(
        speedup > 1.3,
        "DMA should cut per-byte framing roughly in half (speedup {speedup})"
    );
}

#[test]
fn dma_bursts_survive_frame_errors() {
    // Burst-level recovery: aborted blocks retry whole, so payloads stay
    // byte-exact under a modest error rate.
    let params = BusParams::theseus_default()
        .with_dma_block(16)
        .with_relay_chunk(32)
        .with_frame_error_rate(0.01);
    let (mut sim, bus, recs, _) = build(params, 2);
    let payload = vec![0x5Au8; 300];
    sim.with_context(|ctx| {
        ctx.send(
            bus,
            SendStream {
                from: node(1),
                to: StreamEndpoint::Slave(node(2)),
                payload: Bytes::from(payload.clone()),
            },
        );
    });
    sim.run_until(SimTime::from_secs(1));
    let rec: &Recorder = sim.component(recs[1]).expect("registered");
    assert_eq!(rec.delivered, payload);
    let bus_ref: &TpWireBus = sim.component(bus).expect("registered");
    assert!(bus_ref.stats().retries > 0, "1% errors must cost retries");
}

#[test]
fn dma_and_plain_relay_interleave_across_flows() {
    // DMA is a bus-wide policy, but flows of different sizes mix: a tiny
    // (sub-burst) message and a large one share the bus correctly.
    let params = BusParams::theseus_default().with_dma_block(16);
    let (mut sim, bus, recs, _) = build(params, 4);
    sim.with_context(|ctx| {
        ctx.send(
            bus,
            SendStream {
                from: node(1),
                to: StreamEndpoint::Slave(node(3)),
                payload: Bytes::from(vec![1u8; 200]),
            },
        );
        ctx.send(
            bus,
            SendStream {
                from: node(2),
                to: StreamEndpoint::Slave(node(4)),
                payload: Bytes::from_static(b"x"),
            },
        );
    });
    sim.run_until(SimTime::from_secs(1));
    let rec3: &Recorder = sim.component(recs[2]).expect("registered");
    let rec4: &Recorder = sim.component(recs[3]).expect("registered");
    assert_eq!(rec3.delivered, vec![1u8; 200]);
    assert_eq!(rec4.delivered, b"x".to_vec());
}

#[test]
fn broadcast_command_reaches_every_slave_at_once() {
    use tsbus_tpwire::BroadcastCommand;
    let (mut sim, bus, _, _) = build(BusParams::theseus_default(), 4);
    sim.with_context(|ctx| {
        ctx.send(bus, BroadcastCommand { command: 0xA4 });
    });
    sim.run_until(SimTime::from_millis(1));
    let bus_ref: &TpWireBus = sim.component(bus).expect("registered");
    for id in 1..=4u8 {
        let slave = bus_ref.slave(node(id)).expect("on chain");
        assert_eq!(
            slave.command_reg(),
            0xA4,
            "slave {id} must see the broadcast command"
        );
    }
}

#[test]
fn broadcast_interleaves_with_stream_traffic() {
    use tsbus_tpwire::BroadcastCommand;
    let (mut sim, bus, recs, _) = build(BusParams::theseus_default(), 2);
    let payload = vec![0x3Cu8; 120];
    sim.with_context(|ctx| {
        ctx.send(
            bus,
            SendStream {
                from: node(1),
                to: StreamEndpoint::Slave(node(2)),
                payload: Bytes::from(payload.clone()),
            },
        );
        // A broadcast fired mid-transfer must neither corrupt the stream
        // nor get lost.
        ctx.schedule_in(
            SimDuration::from_micros(200),
            bus,
            BroadcastCommand { command: 0x11 },
        );
    });
    sim.run_until(SimTime::from_millis(10));
    let rec: &Recorder = sim.component(recs[1]).expect("registered");
    assert_eq!(rec.delivered, payload, "stream survives the broadcast");
    let bus_ref: &TpWireBus = sim.component(bus).expect("registered");
    assert_eq!(
        bus_ref.slave(node(1)).expect("on chain").command_reg(),
        0x11
    );
    assert_eq!(
        bus_ref.slave(node(2)).expect("on chain").command_reg(),
        0x11
    );
}

#[test]
fn stream_integrity_across_the_configuration_matrix() {
    // Byte-exact delivery for every combination of wiring, chunk size and
    // DMA setting, across payload sizes that straddle the chunk/burst
    // boundaries.
    let wirings = [
        Wiring::Single,
        Wiring::parallel_data(2).expect("valid"),
        Wiring::parallel_buses(2).expect("valid"),
    ];
    for wiring in wirings {
        for chunk in [1u16, 3, 8, 17] {
            for dma in [0u16, 4, 16] {
                for len in [0usize, 1, 2, 7, 8, 9, 33, 100] {
                    let params = BusParams::theseus_default()
                        .with_wiring(wiring)
                        .with_relay_chunk(chunk)
                        .with_dma_block(dma);
                    let (mut sim, bus, recs, _) = build(params, 3);
                    let payload: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
                    sim.with_context(|ctx| {
                        ctx.send(
                            bus,
                            SendStream {
                                from: node(1),
                                to: StreamEndpoint::Slave(node(3)),
                                payload: Bytes::from(payload.clone()),
                            },
                        );
                    });
                    sim.run_until(SimTime::from_millis(200));
                    let rec: &Recorder = sim.component(recs[2]).expect("registered");
                    assert_eq!(
                        rec.delivered, payload,
                        "corrupted under {wiring}, chunk={chunk}, dma={dma}, len={len}"
                    );
                    assert_eq!(
                        rec.messages.len(),
                        1,
                        "framing broken under {wiring}, chunk={chunk}, dma={dma}, len={len}"
                    );
                }
            }
        }
    }
}

#[test]
fn kernel_trace_captures_bus_activity() {
    let mut sim = Simulator::with_seed(42);
    sim.enable_trace(4096);
    let bus_id = ComponentId::from_raw(0);
    let bus = TpWireBus::new(BusParams::theseus_default(), vec![node(1), node(2)]);
    let actual = sim.add_component("bus", bus);
    assert_eq!(actual, bus_id);
    sim.with_context(|ctx| {
        ctx.send(
            bus_id,
            SendStream {
                from: node(1),
                to: StreamEndpoint::Slave(node(2)),
                payload: Bytes::from_static(b"traced"),
            },
        );
    });
    sim.run_until(SimTime::from_micros(500));
    let trace = sim.trace();
    assert!(trace.is_enabled());
    let scheds = trace.with_label("sched").count();
    let fires = trace.with_label("fire").count();
    assert!(scheds > 10, "bus transactions schedule events ({scheds})");
    assert!(fires > 10, "and they fire ({fires})");
    let text = trace.to_text();
    assert!(text.lines().count() > 20);
}

#[test]
fn regression_mode_b_single_flow_does_not_livelock() {
    // Two lanes + a single relay flow between two slaves: eager INT-polls
    // from the idle lane once transiently owned the endpoints the parked
    // job needed, livelocking both lanes into polling forever.
    let params =
        BusParams::theseus_default().with_wiring(Wiring::parallel_buses(2).expect("valid"));
    let (mut sim, bus, recs, _) = build(params, 2);
    sim.with_context(|ctx| {
        for _ in 0..5 {
            ctx.send(
                bus,
                SendStream {
                    from: node(1),
                    to: StreamEndpoint::Slave(node(2)),
                    payload: Bytes::from_static(b"x"),
                },
            );
        }
    });
    sim.run_until(SimTime::from_millis(50));
    let rec: &Recorder = sim.component(recs[1]).expect("registered");
    assert_eq!(rec.messages.len(), 5, "all five messages must drain");
}

mod combined_faults {
    //! Property: under a bursty channel *and* a surprise hard reset of the
    //! destination slave, whatever the sink receives is an uncorrupted
    //! prefix of the payload — retries may mask the faults entirely, or the
    //! job may be abandoned, but bytes are never reordered, duplicated, or
    //! invented. When the bus reports no failed messages, the prefix is the
    //! whole payload.

    use super::{build, node, Recorder};
    use bytes::Bytes;
    use proptest::prelude::*;
    use tsbus_des::{SimDuration, SimTime};
    use tsbus_faults::{Backoff, BurstParams, FaultCommand, FaultKind, RetryParams, RetryPolicy};
    use tsbus_tpwire::{BusParams, SendStream, StreamEndpoint, TpWireBus};

    proptest! {
        #[test]
        fn delivery_is_an_uncorrupted_prefix_under_bursts_and_a_reset(
            len in 16usize..400,
            reset_at_us in 10u64..3000,
            mean_bad_x10 in 40u64..100,
        ) {
            let params = BusParams::theseus_default()
                .with_burst_error(BurstParams::with_mean_lengths(200.0, mean_bad_x10 as f64 / 10.0, 0.0, 1.0))
                .with_retry_policy(RetryPolicy::uniform(RetryParams {
                    max_retries: 6,
                    backoff: Backoff::Exponential { base_bits: 32, cap_bits: 128 },
                }));
            let (mut sim, bus, recs, _) = build(params, 2);
            let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            sim.with_context(|ctx| {
                ctx.send(
                    bus,
                    SendStream {
                        from: node(1),
                        to: StreamEndpoint::Slave(node(2)),
                        payload: Bytes::from(payload.clone()),
                    },
                );
                // A hard reset of the destination somewhere mid-transfer.
                ctx.schedule_in(
                    SimDuration::from_micros(reset_at_us),
                    bus,
                    FaultCommand(FaultKind::SlaveReset(2)),
                );
            });
            sim.run_until(SimTime::from_millis(200));
            let rec: &Recorder = sim.component(recs[1]).expect("registered");
            prop_assert!(
                rec.delivered.len() <= payload.len(),
                "sink got {} bytes for a {}-byte payload (duplication)",
                rec.delivered.len(),
                payload.len()
            );
            prop_assert_eq!(
                &rec.delivered[..],
                &payload[..rec.delivered.len()],
                "delivered bytes must be a prefix of the payload"
            );
            let bus_ref: &TpWireBus = sim.component(bus).expect("registered");
            let stats = bus_ref.stats();
            prop_assert_eq!(stats.faults_injected, 1, "the reset command fired");
            if stats.messages_failed == 0 {
                prop_assert_eq!(
                    rec.delivered.len(),
                    payload.len(),
                    "no failure reported, so the whole payload must arrive"
                );
            }
        }
    }
}
