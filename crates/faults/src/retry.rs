//! Master retry policy: how many times to resend, and how long to wait.
//!
//! The TpWIRE spec only says the master resends "a predetermined number of
//! times"; the seed implementation hard-coded an immediate-resend counter.
//! This module turns that into data: per-class retry budgets with backoff
//! measured in bit periods, so a sweep can ask whether waiting out a burst
//! beats hammering into it.

/// Delay schedule between retry attempts, in bus bit periods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backoff {
    /// Resend immediately (the seed behaviour).
    None,
    /// Wait a fixed number of bit periods before every resend.
    Fixed {
        /// Delay before each retry.
        bits: u64,
    },
    /// Wait `base_bits << (attempt - 1)`, capped at `cap_bits`.
    Exponential {
        /// Delay before the first retry.
        base_bits: u64,
        /// Upper bound on any single delay.
        cap_bits: u64,
    },
}

impl Backoff {
    /// Delay (in bit periods) before retry number `attempt` (1-based:
    /// `attempt == 1` is the first resend).
    #[must_use]
    pub fn delay_bits(&self, attempt: u32) -> u64 {
        match *self {
            Backoff::None => 0,
            Backoff::Fixed { bits } => bits,
            Backoff::Exponential {
                base_bits,
                cap_bits,
            } => {
                let shift = attempt.saturating_sub(1).min(63);
                base_bits.saturating_shl(shift).min(cap_bits)
            }
        }
    }
}

/// Saturating left shift helper (u64 lacks one in std).
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> Self {
        if self == 0 {
            return 0;
        }
        if shift >= self.leading_zeros() {
            u64::MAX
        } else {
            self << shift
        }
    }
}

/// One class's retry budget and backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryParams {
    /// Maximum number of *resends* after the initial attempt.
    pub max_retries: u8,
    /// Delay schedule between attempts.
    pub backoff: Backoff,
}

impl RetryParams {
    /// Immediate resends, `max_retries` times — the seed behaviour.
    #[must_use]
    pub const fn immediate(max_retries: u8) -> Self {
        Self {
            max_retries,
            backoff: Backoff::None,
        }
    }
}

impl Default for RetryParams {
    fn default() -> Self {
        Self::immediate(3)
    }
}

/// Frame classification for per-class retry overrides.
///
/// Stream reads are idempotent on the bus (the alternating-bit toggle makes
/// re-reads safe) while writes consume FIFO space on the slave, so the two
/// directions may warrant different budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameClass {
    /// Node selection, pointer setup, discovery, and other control frames.
    Control,
    /// Data reads from the stream FIFO (alternating-bit protected).
    StreamRead,
    /// Data writes into the stream FIFO.
    StreamWrite,
}

/// The master's complete retry policy: a default plus optional per-class
/// overrides for the two stream directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Applied to any class without an override.
    pub default: RetryParams,
    /// Override for [`FrameClass::StreamRead`].
    pub stream_read: Option<RetryParams>,
    /// Override for [`FrameClass::StreamWrite`].
    pub stream_write: Option<RetryParams>,
}

impl RetryPolicy {
    /// Uniform immediate-resend policy (the seed behaviour, historically
    /// `BusParams::max_retries`).
    #[must_use]
    pub const fn immediate(max_retries: u8) -> Self {
        Self {
            default: RetryParams::immediate(max_retries),
            stream_read: None,
            stream_write: None,
        }
    }

    /// Uniform policy with the given parameters for every class.
    #[must_use]
    pub const fn uniform(params: RetryParams) -> Self {
        Self {
            default: params,
            stream_read: None,
            stream_write: None,
        }
    }

    /// Returns a copy with a [`FrameClass::StreamRead`] override.
    #[must_use]
    pub const fn with_stream_read(mut self, params: RetryParams) -> Self {
        self.stream_read = Some(params);
        self
    }

    /// Returns a copy with a [`FrameClass::StreamWrite`] override.
    #[must_use]
    pub const fn with_stream_write(mut self, params: RetryParams) -> Self {
        self.stream_write = Some(params);
        self
    }

    /// The effective parameters for one frame class.
    #[must_use]
    pub fn for_class(&self, class: FrameClass) -> RetryParams {
        match class {
            FrameClass::Control => self.default,
            FrameClass::StreamRead => self.stream_read.unwrap_or(self.default),
            FrameClass::StreamWrite => self.stream_write.unwrap_or(self.default),
        }
    }
}

impl Default for RetryPolicy {
    /// Matches the seed's hard-coded behaviour: three immediate resends.
    fn default() -> Self {
        Self::immediate(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedules() {
        assert_eq!(Backoff::None.delay_bits(1), 0);
        assert_eq!(Backoff::None.delay_bits(7), 0);
        let fixed = Backoff::Fixed { bits: 64 };
        assert_eq!(fixed.delay_bits(1), 64);
        assert_eq!(fixed.delay_bits(5), 64);
        let exp = Backoff::Exponential {
            base_bits: 32,
            cap_bits: 2048,
        };
        assert_eq!(exp.delay_bits(1), 32);
        assert_eq!(exp.delay_bits(2), 64);
        assert_eq!(exp.delay_bits(3), 128);
        assert_eq!(exp.delay_bits(10), 2048, "caps at cap_bits");
        assert_eq!(exp.delay_bits(100), 2048, "huge attempts saturate");
    }

    #[test]
    fn zero_base_never_delays() {
        let exp = Backoff::Exponential {
            base_bits: 0,
            cap_bits: 1024,
        };
        assert_eq!(exp.delay_bits(1), 0);
        assert_eq!(exp.delay_bits(64), 0);
    }

    #[test]
    fn class_overrides_resolve() {
        let policy = RetryPolicy::immediate(3).with_stream_read(RetryParams {
            max_retries: 8,
            backoff: Backoff::Exponential {
                base_bits: 16,
                cap_bits: 512,
            },
        });
        assert_eq!(
            policy.for_class(FrameClass::Control),
            RetryParams::immediate(3)
        );
        assert_eq!(
            policy.for_class(FrameClass::StreamWrite),
            RetryParams::immediate(3)
        );
        assert_eq!(policy.for_class(FrameClass::StreamRead).max_retries, 8);
    }

    #[test]
    fn default_matches_seed_behaviour() {
        let policy = RetryPolicy::default();
        for class in [
            FrameClass::Control,
            FrameClass::StreamRead,
            FrameClass::StreamWrite,
        ] {
            let p = policy.for_class(class);
            assert_eq!(p.max_retries, 3);
            assert_eq!(p.backoff, Backoff::None);
        }
    }
}
