//! Master retry policy: how many times to resend, and how long to wait.
//!
//! The TpWIRE spec only says the master resends "a predetermined number of
//! times"; the seed implementation hard-coded an immediate-resend counter.
//! This module turns that into data: per-class retry budgets with backoff
//! measured in bit periods, so a sweep can ask whether waiting out a burst
//! beats hammering into it.

/// Delay schedule between retry attempts, in bus bit periods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backoff {
    /// Resend immediately (the seed behaviour).
    None,
    /// Wait a fixed number of bit periods before every resend.
    Fixed {
        /// Delay before each retry.
        bits: u64,
    },
    /// Wait `base_bits << (attempt - 1)`, capped at `cap_bits`.
    Exponential {
        /// Delay before the first retry.
        base_bits: u64,
        /// Upper bound on any single delay.
        cap_bits: u64,
    },
}

impl Backoff {
    /// Delay (in bit periods) before retry number `attempt` (1-based:
    /// `attempt == 1` is the first resend; `attempt == 0` is treated as the
    /// first resend too, so a miscounted caller gets the shortest wait, not
    /// a shifted-by-`u32::MAX` one).
    ///
    /// Saturates rather than wraps everywhere: a zero `base_bits` never
    /// delays regardless of the attempt count, and attempts large enough to
    /// overflow the shift saturate to `cap_bits`.
    #[must_use]
    pub fn delay_bits(&self, attempt: u32) -> u64 {
        match *self {
            Backoff::None => 0,
            Backoff::Fixed { bits } => bits,
            Backoff::Exponential {
                base_bits,
                cap_bits,
            } => {
                let shift = attempt.saturating_sub(1).min(63);
                base_bits.saturating_shl(shift).min(cap_bits)
            }
        }
    }
}

/// Saturating left shift helper (u64 lacks one in std).
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> Self {
        if self == 0 {
            return 0;
        }
        // `x << lz(x)` still fits (the top set bit lands on bit 63); only
        // shifting *past* the leading zeros overflows.
        if shift > self.leading_zeros() {
            u64::MAX
        } else {
            self << shift
        }
    }
}

/// One class's retry budget and backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryParams {
    /// Maximum number of *resends* after the initial attempt.
    pub max_retries: u8,
    /// Delay schedule between attempts.
    pub backoff: Backoff,
}

impl RetryParams {
    /// Immediate resends, `max_retries` times — the seed behaviour.
    #[must_use]
    pub const fn immediate(max_retries: u8) -> Self {
        Self {
            max_retries,
            backoff: Backoff::None,
        }
    }

    /// Worst-case cumulative backoff across a full retry budget, in bit
    /// periods (saturating).
    ///
    /// This is the longest span the master can spend *silent* on the wire
    /// while it waits out backoff delays for one transaction. Corrupted
    /// frames do not feed the slaves' reset watchdogs, so this sum — not
    /// any single delay — is what must stay below the slave reset timeout
    /// (2048 bit periods in the TpWIRE specification): beyond it the
    /// slaves reset mid-recovery and the remaining retries fail against
    /// deselected hardware.
    #[must_use]
    pub fn worst_case_backoff_bits(&self) -> u64 {
        let mut total = 0u64;
        for attempt in 1..=u32::from(self.max_retries) {
            total = total.saturating_add(self.backoff.delay_bits(attempt));
        }
        total
    }

    /// Returns a copy whose worst-case cumulative backoff fits within
    /// `budget_bits`, along with whether anything was changed.
    ///
    /// The clamp is deliberately conservative and deterministic: each
    /// per-attempt delay is capped at `budget_bits / max_retries`, so the
    /// sum can never exceed the budget. Policies already inside the budget
    /// come back untouched.
    #[must_use]
    pub fn clamped_to_backoff_budget(self, budget_bits: u64) -> (Self, bool) {
        if self.worst_case_backoff_bits() <= budget_bits {
            return (self, false);
        }
        let per_attempt = budget_bits / u64::from(self.max_retries).max(1);
        let backoff = match self.backoff {
            Backoff::None => Backoff::None,
            Backoff::Fixed { .. } => Backoff::Fixed { bits: per_attempt },
            Backoff::Exponential { base_bits, .. } => Backoff::Exponential {
                base_bits: base_bits.min(per_attempt),
                cap_bits: per_attempt,
            },
        };
        (
            RetryParams {
                max_retries: self.max_retries,
                backoff,
            },
            true,
        )
    }
}

impl Default for RetryParams {
    fn default() -> Self {
        Self::immediate(3)
    }
}

/// Frame classification for per-class retry overrides.
///
/// Stream reads are idempotent on the bus (the alternating-bit toggle makes
/// re-reads safe) while writes consume FIFO space on the slave, so the two
/// directions may warrant different budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameClass {
    /// Node selection, pointer setup, discovery, and other control frames.
    Control,
    /// Data reads from the stream FIFO (alternating-bit protected).
    StreamRead,
    /// Data writes into the stream FIFO.
    StreamWrite,
}

/// The master's complete retry policy: a default plus optional per-class
/// overrides for the two stream directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Applied to any class without an override.
    pub default: RetryParams,
    /// Override for [`FrameClass::StreamRead`].
    pub stream_read: Option<RetryParams>,
    /// Override for [`FrameClass::StreamWrite`].
    pub stream_write: Option<RetryParams>,
}

impl RetryPolicy {
    /// Uniform immediate-resend policy (the seed behaviour, historically
    /// `BusParams::max_retries`).
    #[must_use]
    pub const fn immediate(max_retries: u8) -> Self {
        Self {
            default: RetryParams::immediate(max_retries),
            stream_read: None,
            stream_write: None,
        }
    }

    /// Uniform policy with the given parameters for every class.
    #[must_use]
    pub const fn uniform(params: RetryParams) -> Self {
        Self {
            default: params,
            stream_read: None,
            stream_write: None,
        }
    }

    /// Returns a copy with a [`FrameClass::StreamRead`] override.
    #[must_use]
    pub const fn with_stream_read(mut self, params: RetryParams) -> Self {
        self.stream_read = Some(params);
        self
    }

    /// Returns a copy with a [`FrameClass::StreamWrite`] override.
    #[must_use]
    pub const fn with_stream_write(mut self, params: RetryParams) -> Self {
        self.stream_write = Some(params);
        self
    }

    /// The effective parameters for one frame class.
    #[must_use]
    pub fn for_class(&self, class: FrameClass) -> RetryParams {
        match class {
            FrameClass::Control => self.default,
            FrameClass::StreamRead => self.stream_read.unwrap_or(self.default),
            FrameClass::StreamWrite => self.stream_write.unwrap_or(self.default),
        }
    }

    /// The largest worst-case cumulative backoff of any frame class, in
    /// bit periods (see [`RetryParams::worst_case_backoff_bits`]).
    #[must_use]
    pub fn worst_case_backoff_bits(&self) -> u64 {
        [
            FrameClass::Control,
            FrameClass::StreamRead,
            FrameClass::StreamWrite,
        ]
        .into_iter()
        .map(|class| self.for_class(class).worst_case_backoff_bits())
        .max()
        .unwrap_or(0)
    }

    /// Checks the policy against a silent-span budget (typically the
    /// TpWIRE 2048-bit slave reset timeout): every class's worst-case
    /// cumulative backoff must fit within `budget_bits`.
    ///
    /// # Errors
    ///
    /// Returns the first offending class with its worst-case sum.
    pub fn validated_against_watchdog(
        self,
        budget_bits: u64,
    ) -> Result<Self, BackoffExceedsWatchdog> {
        for class in [
            FrameClass::Control,
            FrameClass::StreamRead,
            FrameClass::StreamWrite,
        ] {
            let worst = self.for_class(class).worst_case_backoff_bits();
            if worst > budget_bits {
                return Err(BackoffExceedsWatchdog {
                    class,
                    worst_case_bits: worst,
                    budget_bits,
                });
            }
        }
        Ok(self)
    }

    /// Returns a copy in which every class's worst-case cumulative backoff
    /// fits within `budget_bits`, plus whether any class was clamped (see
    /// [`RetryParams::clamped_to_backoff_budget`] for the clamp rule).
    #[must_use]
    pub fn clamped_to_watchdog(self, budget_bits: u64) -> (Self, bool) {
        let (default, c0) = self.default.clamped_to_backoff_budget(budget_bits);
        let (stream_read, c1) = match self.stream_read {
            Some(p) => {
                let (p, c) = p.clamped_to_backoff_budget(budget_bits);
                (Some(p), c)
            }
            None => (None, false),
        };
        let (stream_write, c2) = match self.stream_write {
            Some(p) => {
                let (p, c) = p.clamped_to_backoff_budget(budget_bits);
                (Some(p), c)
            }
            None => (None, false),
        };
        (
            RetryPolicy {
                default,
                stream_read,
                stream_write,
            },
            c0 || c1 || c2,
        )
    }
}

/// Error: a retry policy whose worst-case cumulative backoff outlasts the
/// slave reset watchdog, so its later retries would fire against slaves
/// that have already reset and deselected themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffExceedsWatchdog {
    /// The offending frame class.
    pub class: FrameClass,
    /// That class's worst-case cumulative backoff, in bit periods.
    pub worst_case_bits: u64,
    /// The budget it exceeds (the slave reset timeout), in bit periods.
    pub budget_bits: u64,
}

impl core::fmt::Display for BackoffExceedsWatchdog {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "worst-case cumulative backoff of {:?} frames is {} bits, \
             exceeding the {}-bit slave reset watchdog",
            self.class, self.worst_case_bits, self.budget_bits
        )
    }
}

impl std::error::Error for BackoffExceedsWatchdog {}

impl Default for RetryPolicy {
    /// Matches the seed's hard-coded behaviour: three immediate resends.
    fn default() -> Self {
        Self::immediate(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedules() {
        assert_eq!(Backoff::None.delay_bits(1), 0);
        assert_eq!(Backoff::None.delay_bits(7), 0);
        let fixed = Backoff::Fixed { bits: 64 };
        assert_eq!(fixed.delay_bits(1), 64);
        assert_eq!(fixed.delay_bits(5), 64);
        let exp = Backoff::Exponential {
            base_bits: 32,
            cap_bits: 2048,
        };
        assert_eq!(exp.delay_bits(1), 32);
        assert_eq!(exp.delay_bits(2), 64);
        assert_eq!(exp.delay_bits(3), 128);
        assert_eq!(exp.delay_bits(10), 2048, "caps at cap_bits");
        assert_eq!(exp.delay_bits(100), 2048, "huge attempts saturate");
    }

    #[test]
    fn zero_base_never_delays() {
        let exp = Backoff::Exponential {
            base_bits: 0,
            cap_bits: 1024,
        };
        assert_eq!(exp.delay_bits(1), 0);
        assert_eq!(exp.delay_bits(64), 0);
        assert_eq!(exp.delay_bits(u32::MAX), 0, "zero base saturates at zero");
    }

    #[test]
    fn huge_attempt_counts_saturate_cleanly() {
        let uncapped = Backoff::Exponential {
            base_bits: 1,
            cap_bits: u64::MAX,
        };
        // Shift saturates at 63; 1 << 63 still fits exactly (no premature
        // jump to u64::MAX — the old `>=` comparison saturated one shift
        // too early).
        assert_eq!(uncapped.delay_bits(64), 1 << 63);
        assert_eq!(uncapped.delay_bits(u32::MAX), 1 << 63);
        let wide = Backoff::Exponential {
            base_bits: 3,
            cap_bits: u64::MAX,
        };
        // 3 << 63 overflows, so it must saturate to u64::MAX, capped.
        assert_eq!(wide.delay_bits(64), u64::MAX);
        assert_eq!(wide.delay_bits(u32::MAX.saturating_sub(1)), u64::MAX);
        // attempt 0 (a miscounted caller) behaves like the first resend.
        assert_eq!(
            Backoff::Exponential {
                base_bits: 32,
                cap_bits: 2048
            }
            .delay_bits(0),
            32
        );
    }

    #[test]
    fn worst_case_cumulative_backoff_sums_the_schedule() {
        // 32 + 64 + 128 + 128 = 352.
        let p = RetryParams {
            max_retries: 4,
            backoff: Backoff::Exponential {
                base_bits: 32,
                cap_bits: 128,
            },
        };
        assert_eq!(p.worst_case_backoff_bits(), 352);
        assert_eq!(RetryParams::immediate(200).worst_case_backoff_bits(), 0);
        let saturating = RetryParams {
            max_retries: 255,
            backoff: Backoff::Fixed { bits: u64::MAX },
        };
        assert_eq!(saturating.worst_case_backoff_bits(), u64::MAX);
    }

    #[test]
    fn watchdog_validation_accepts_and_rejects() {
        let fits = RetryPolicy::uniform(RetryParams {
            max_retries: 12,
            backoff: Backoff::Exponential {
                base_bits: 32,
                cap_bits: 128,
            },
        });
        assert_eq!(fits.worst_case_backoff_bits(), 1376);
        assert_eq!(fits.validated_against_watchdog(2048), Ok(fits));

        let too_patient = RetryPolicy::immediate(3).with_stream_read(RetryParams {
            max_retries: 10,
            backoff: Backoff::Fixed { bits: 512 },
        });
        let err = too_patient
            .validated_against_watchdog(2048)
            .expect_err("5120 bits of silence must be rejected");
        assert_eq!(err.class, FrameClass::StreamRead);
        assert_eq!(err.worst_case_bits, 5120);
        assert_eq!(err.budget_bits, 2048);
        assert!(err.to_string().contains("2048-bit slave reset watchdog"));
    }

    #[test]
    fn watchdog_clamp_is_idempotent_and_fits() {
        let too_patient = RetryPolicy::uniform(RetryParams {
            max_retries: 8,
            backoff: Backoff::Exponential {
                base_bits: 256,
                cap_bits: 4096,
            },
        });
        assert!(too_patient.worst_case_backoff_bits() > 2048);
        let (clamped, changed) = too_patient.clamped_to_watchdog(2048);
        assert!(changed);
        assert!(clamped.worst_case_backoff_bits() <= 2048);
        // Per-attempt cap = 2048 / 8 = 256 bits.
        assert_eq!(
            clamped.default.backoff,
            Backoff::Exponential {
                base_bits: 256,
                cap_bits: 256,
            }
        );
        let (again, changed_again) = clamped.clamped_to_watchdog(2048);
        assert_eq!(again, clamped);
        assert!(!changed_again, "a fitting policy passes through untouched");
    }

    #[test]
    fn class_overrides_resolve() {
        let policy = RetryPolicy::immediate(3).with_stream_read(RetryParams {
            max_retries: 8,
            backoff: Backoff::Exponential {
                base_bits: 16,
                cap_bits: 512,
            },
        });
        assert_eq!(
            policy.for_class(FrameClass::Control),
            RetryParams::immediate(3)
        );
        assert_eq!(
            policy.for_class(FrameClass::StreamWrite),
            RetryParams::immediate(3)
        );
        assert_eq!(policy.for_class(FrameClass::StreamRead).max_retries, 8);
    }

    #[test]
    fn default_matches_seed_behaviour() {
        let policy = RetryPolicy::default();
        for class in [
            FrameClass::Control,
            FrameClass::StreamRead,
            FrameClass::StreamWrite,
        ] {
            let p = policy.for_class(class);
            assert_eq!(p.max_retries, 3);
            assert_eq!(p.backoff, Backoff::None);
        }
    }
}
