//! # tsbus-faults — deterministic fault injection for the tsbus workspace
//!
//! The paper's whole premise is estimating TpWIRE behaviour under adverse
//! conditions — its spec leans on recovery machinery (master resend, the
//! 2048-bit-period slave reset timeout) — but a uniform per-frame error
//! probability is a poor model of real cable faults, which arrive in bursts
//! and take whole nodes down. This crate supplies the shared fault
//! vocabulary the rest of the workspace consumes:
//!
//! * [`BurstParams`] / [`GilbertElliott`] — a two-state burst error channel
//!   (good/bad with geometric sojourns), evaluated in continuous simulated
//!   time so backoff actually rides out bursts.
//! * [`RetryPolicy`] / [`Backoff`] / [`FrameClass`] — the master's resend
//!   strategy, extracted from hard-coded counts into per-class policies
//!   with fixed or exponential backoff measured in bit periods.
//! * [`FaultSchedule`] / [`FaultDriver`] / [`FaultCommand`] — timed fault
//!   events (slave crash/revive/reset, daisy-chain break/heal) delivered to
//!   a target component by a small driver [`Component`](tsbus_des::Component).
//! * [`LinkFaults`] — the packet-link fault matrix (loss, jitter,
//!   duplication, bounded reordering) used by `tsbus-netsim`.
//! * [`SupervisionConfig`] / [`CircuitBreaker`] / [`SlaveHealth`] — the
//!   supervision layer's per-slave health tracking and the
//!   Closed → Open → Half-Open circuit breaker the master consults before
//!   issuing transactions, so persistently sick slaves are quarantined
//!   instead of bleeding the bus through cumulative retry backoff.
//!
//! Everything draws from the simulation's seeded [`SimRng`] streams: the
//! same master seed replays the identical fault trace, byte for byte.
//!
//! [`SimRng`]: tsbus_des::SimRng

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod burst;
mod link;
mod retry;
mod schedule;
mod supervise;

pub use burst::{BurstParams, ChannelState, GilbertElliott};
pub use link::LinkFaults;
pub use retry::{Backoff, BackoffExceedsWatchdog, FrameClass, RetryParams, RetryPolicy};
pub use schedule::{FaultCommand, FaultDriver, FaultEvent, FaultKind, FaultSchedule};
pub use supervise::{
    Admission, BreakerState, CircuitBreaker, SlaveHealth, SupervisionConfig, Transition,
};

/// Validates a probability parameter: must be finite and within `[0, 1]`.
///
/// The fault layer is all about injecting garbage *downstream*; its own
/// knobs reject garbage loudly instead of producing nonsense draws.
///
/// # Panics
///
/// Panics (with the offending parameter name) if `p` is NaN, infinite, or
/// outside `[0, 1]`.
pub fn validate_probability(name: &str, p: f64) -> f64 {
    assert!(
        p.is_finite() && (0.0..=1.0).contains(&p),
        "{name} must be a probability in [0, 1], got {p}"
    );
    p
}

#[cfg(test)]
mod tests {
    use super::validate_probability;

    #[test]
    fn accepts_boundary_probabilities() {
        assert_eq!(validate_probability("p", 0.0), 0.0);
        assert_eq!(validate_probability("p", 1.0), 1.0);
        assert_eq!(validate_probability("p", 0.25), 0.25);
    }

    #[test]
    #[should_panic(expected = "loss must be a probability")]
    fn rejects_nan() {
        validate_probability("loss", f64::NAN);
    }

    #[test]
    #[should_panic(expected = "got 1.5")]
    fn rejects_out_of_range() {
        validate_probability("dup", 1.5);
    }

    #[test]
    #[should_panic(expected = "got -0.1")]
    fn rejects_negative() {
        validate_probability("err", -0.1);
    }
}
