//! Slave supervision primitives: per-slave health tracking and the
//! Closed → Open → Half-Open circuit breaker the bus master consults on
//! every transaction.
//!
//! The TpWIRE recovery story so far is purely *reactive*: the master
//! resends a failed frame a predetermined number of times, waiting out a
//! backoff schedule that is itself budgeted against the 2048-bit slave
//! reset watchdog. Against a transient burst that is the right call;
//! against a slave that has crashed, lost its chain segment, or gone
//! persistently deaf, every retry budget spent on it is bus time stolen
//! from healthy slaves. This module supplies the detection side:
//!
//! * [`SlaveHealth`] — an EWMA error-rate estimate plus a
//!   consecutive-failure counter, fed by retry/CRC/timeout outcomes.
//!   Pure integer/float arithmetic, no RNG: same outcome sequence, same
//!   state, byte for byte.
//! * [`CircuitBreaker`] — the per-slave state machine. While **Closed**
//!   requests pass through; a tripped breaker goes **Open** and the master
//!   fast-fails requests instead of burning cumulative backoff; after the
//!   open window expires the breaker goes **Half-Open** and admits a
//!   bounded budget of cheap probe frames before readmitting the slave.
//!
//! The state machine is deliberately time-based rather than event-count
//! based: the open window is expressed in bus *bit periods* by
//! [`SupervisionConfig::open_bits`] and converted to simulated time by
//! the caller, so the same configuration behaves identically across bus
//! bit rates.
//!
//! Only these transitions exist (anything else is a bug, and the property
//! tests enforce it):
//!
//! ```text
//! Closed ──trip──► Open ──window expires──► HalfOpen ──probe ok×budget──► Closed
//!                   ▲                           │
//!                   └────────probe failed───────┘
//! ```

use core::fmt;

use tsbus_des::{SimDuration, SimTime};

/// Configuration of one slave's supervision: health-tracker smoothing,
/// trip thresholds, the quarantine window, and the probe budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisionConfig {
    /// EWMA smoothing factor for the error-rate estimate, in `(0, 1]`.
    /// Larger = more reactive, smaller = smoother.
    pub ewma_alpha: f64,
    /// Trip when the EWMA error rate reaches this level (and at least
    /// [`min_samples`](SupervisionConfig::min_samples) outcomes were seen).
    pub trip_error_rate: f64,
    /// Outcomes required before the EWMA threshold may trip the breaker
    /// (prevents a cold-start trip on the first unlucky frame).
    pub min_samples: u32,
    /// Trip immediately after this many consecutive failures, regardless
    /// of the EWMA.
    pub trip_consecutive: u32,
    /// Length of one Open (quarantine) window, in bus bit periods.
    pub open_bits: u64,
    /// Probes admitted per Half-Open episode; the breaker re-closes after
    /// this many consecutive probe successes and re-opens on the first
    /// probe failure.
    pub probe_budget: u8,
}

impl SupervisionConfig {
    /// A conservative default tuned for the Theseus bus: trip after 4
    /// consecutive failures or a smoothed error rate ≥ 85 % over at least
    /// 8 samples; quarantine for 4096 bit periods (two watchdog windows);
    /// readmit after 2 clean probes.
    #[must_use]
    pub fn conservative() -> Self {
        SupervisionConfig {
            ewma_alpha: 0.2,
            trip_error_rate: 0.85,
            min_samples: 8,
            trip_consecutive: 4,
            open_bits: 4096,
            probe_budget: 2,
        }
    }

    /// Returns a copy with a different consecutive-failure trip threshold.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero (a breaker that trips on zero failures would
    /// never admit anything).
    #[must_use]
    pub fn with_trip_consecutive(mut self, n: u32) -> Self {
        assert!(n > 0, "trip_consecutive must be at least 1");
        self.trip_consecutive = n;
        self
    }

    /// Returns a copy with a different Open-window length in bit periods.
    #[must_use]
    pub fn with_open_bits(mut self, bits: u64) -> Self {
        self.open_bits = bits;
        self
    }

    /// Returns a copy with a different probe budget.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero (an Open slave could never be readmitted).
    #[must_use]
    pub fn with_probe_budget(mut self, budget: u8) -> Self {
        assert!(budget > 0, "probe budget must be at least 1");
        self.probe_budget = budget;
        self
    }

    /// Validates the numeric ranges, panicking loudly on nonsense (the
    /// fault layer's house rule: reject garbage upstream of the draws).
    ///
    /// # Panics
    ///
    /// Panics if `ewma_alpha` is outside `(0, 1]`, `trip_error_rate` is not
    /// a probability, or `probe_budget`/`trip_consecutive` is zero.
    #[must_use]
    pub fn validated(self) -> Self {
        assert!(
            self.ewma_alpha.is_finite() && self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0,
            "ewma_alpha must be in (0, 1], got {}",
            self.ewma_alpha
        );
        let _ = crate::validate_probability("trip_error_rate", self.trip_error_rate);
        assert!(self.probe_budget > 0, "probe budget must be at least 1");
        assert!(
            self.trip_consecutive > 0,
            "trip_consecutive must be at least 1"
        );
        self
    }
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        Self::conservative()
    }
}

/// The circuit-breaker state of one supervised slave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Healthy: requests pass through.
    Closed,
    /// Quarantined: the master fast-fails requests for this slave.
    Open,
    /// Probing: a bounded budget of probe frames tests readmission.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        };
        f.write_str(name)
    }
}

/// Deterministic per-slave health: an EWMA of the failure indicator plus
/// a consecutive-failure counter. Snapshot-able at any instant via the
/// accessors; no interior randomness.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SlaveHealth {
    ewma: f64,
    consecutive_failures: u32,
    samples: u64,
    failures: u64,
}

impl SlaveHealth {
    /// A fresh tracker: error rate 0, no samples.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one transaction outcome (`ok = false` for a retry, CRC error,
    /// timeout, or exhausted budget).
    pub fn record(&mut self, alpha: f64, ok: bool) {
        let x = if ok { 0.0 } else { 1.0 };
        self.ewma = if self.samples == 0 {
            x
        } else {
            alpha * x + (1.0 - alpha) * self.ewma
        };
        self.samples += 1;
        if ok {
            self.consecutive_failures = 0;
        } else {
            self.consecutive_failures = self.consecutive_failures.saturating_add(1);
            self.failures += 1;
        }
    }

    /// The smoothed error-rate estimate in `[0, 1]`.
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        self.ewma
    }

    /// Failures since the last success.
    #[must_use]
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Outcomes observed in total.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Failures observed in total.
    #[must_use]
    pub fn failures(&self) -> u64 {
        self.failures
    }
}

/// What the breaker lets the master do with a would-be transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: issue normally.
    Admit,
    /// Breaker half-open and probe budget available: issue as a probe.
    Probe,
    /// Breaker open (or probe budget spent): fail fast, issue nothing.
    FastFail,
}

/// One observed state change, for trace emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// The state left.
    pub from: BreakerState,
    /// The state entered.
    pub to: BreakerState,
}

/// The per-slave circuit breaker: health tracker plus state machine.
///
/// Driven entirely by the caller's clock (`now`) and outcome feed; see the
/// module docs for the transition diagram. Deterministic by construction —
/// replaying the same `(now, outcome)` sequence reproduces the same states.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: SupervisionConfig,
    open_period: SimDuration,
    health: SlaveHealth,
    state: BreakerState,
    /// When the current Open window expires (meaningful while Open).
    open_until: SimTime,
    /// Probes admitted in the current Half-Open episode.
    probes_issued: u8,
    /// Consecutive probe successes in the current Half-Open episode.
    probe_successes: u8,
}

impl CircuitBreaker {
    /// Creates a Closed breaker. `open_period` is the Open-window length in
    /// simulated time (the caller converts [`SupervisionConfig::open_bits`]
    /// at its bus bit rate).
    #[must_use]
    pub fn new(cfg: SupervisionConfig, open_period: SimDuration) -> Self {
        CircuitBreaker {
            cfg: cfg.validated(),
            open_period,
            health: SlaveHealth::new(),
            state: BreakerState::Closed,
            open_until: SimTime::ZERO,
            probes_issued: 0,
            probe_successes: 0,
        }
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// The health tracker (read-only snapshot).
    #[must_use]
    pub fn health(&self) -> &SlaveHealth {
        &self.health
    }

    /// Consults the breaker before issuing a transaction at `now`. May
    /// transition Open → Half-Open when the open window has expired; the
    /// transition, if any, is returned for trace emission.
    pub fn admit(&mut self, now: SimTime) -> (Admission, Option<Transition>) {
        match self.state {
            BreakerState::Closed => (Admission::Admit, None),
            BreakerState::Open => {
                if now >= self.open_until {
                    self.state = BreakerState::HalfOpen;
                    self.probes_issued = 1;
                    self.probe_successes = 0;
                    (
                        Admission::Probe,
                        Some(Transition {
                            from: BreakerState::Open,
                            to: BreakerState::HalfOpen,
                        }),
                    )
                } else {
                    (Admission::FastFail, None)
                }
            }
            BreakerState::HalfOpen => {
                if self.probes_issued < self.cfg.probe_budget {
                    self.probes_issued += 1;
                    (Admission::Probe, None)
                } else {
                    (Admission::FastFail, None)
                }
            }
        }
    }

    /// Feeds the outcome of one completed transaction (including probes)
    /// at `now`. Returns the transition it caused, if any.
    pub fn record(&mut self, now: SimTime, ok: bool) -> Option<Transition> {
        self.health.record(self.cfg.ewma_alpha, ok);
        match self.state {
            BreakerState::Closed => {
                if !ok && self.tripped() {
                    self.open(now);
                    Some(Transition {
                        from: BreakerState::Closed,
                        to: BreakerState::Open,
                    })
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                if ok {
                    self.probe_successes += 1;
                    if self.probe_successes >= self.cfg.probe_budget {
                        self.state = BreakerState::Closed;
                        self.probes_issued = 0;
                        self.probe_successes = 0;
                        Some(Transition {
                            from: BreakerState::HalfOpen,
                            to: BreakerState::Closed,
                        })
                    } else {
                        None
                    }
                } else {
                    self.open(now);
                    Some(Transition {
                        from: BreakerState::HalfOpen,
                        to: BreakerState::Open,
                    })
                }
            }
            // A transaction issued before the trip may complete while Open;
            // its outcome feeds the health estimate only.
            BreakerState::Open => None,
        }
    }

    fn tripped(&self) -> bool {
        self.health.consecutive_failures >= self.cfg.trip_consecutive
            || (self.health.samples >= u64::from(self.cfg.min_samples)
                && self.health.error_rate() >= self.cfg.trip_error_rate)
    }

    fn open(&mut self, now: SimTime) {
        self.state = BreakerState::Open;
        self.open_until = now + self.open_period;
        self.probes_issued = 0;
        self.probe_successes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(
            SupervisionConfig::conservative(),
            SimDuration::from_micros(512), // 4096 bits at 8 MHz
        )
    }

    #[test]
    fn closed_admits_and_trips_on_consecutive_failures() {
        let mut b = breaker();
        let t = SimTime::ZERO;
        assert_eq!(b.admit(t), (Admission::Admit, None));
        for i in 0..3 {
            assert_eq!(b.record(t, false), None, "failure {i} must not trip yet");
        }
        let tr = b.record(t, false).expect("4th consecutive failure trips");
        assert_eq!(tr.from, BreakerState::Closed);
        assert_eq!(tr.to, BreakerState::Open);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn successes_reset_the_consecutive_count() {
        let mut b = breaker();
        let t = SimTime::ZERO;
        for _ in 0..3 {
            b.record(t, false);
        }
        b.record(t, true);
        assert_eq!(b.health().consecutive_failures(), 0);
        for _ in 0..3 {
            assert_eq!(b.record(t, false), None);
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn ewma_trips_without_a_consecutive_run() {
        let cfg = SupervisionConfig {
            trip_consecutive: 100, // effectively off
            ..SupervisionConfig::conservative()
        };
        let mut b = CircuitBreaker::new(cfg, SimDuration::from_micros(512));
        let t = SimTime::ZERO;
        // Alternate enough failures to drive the EWMA above 0.85 without
        // ever reaching 100 consecutive ones.
        let mut tripped = false;
        for i in 0..200 {
            let ok = i % 17 == 0;
            if b.record(t, ok).is_some() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "a 94% failure mix must trip the EWMA threshold");
    }

    #[test]
    fn open_fast_fails_until_the_window_expires_then_probes() {
        let mut b = breaker();
        let t0 = SimTime::ZERO;
        for _ in 0..4 {
            b.record(t0, false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        let early = t0 + SimDuration::from_micros(100);
        assert_eq!(b.admit(early), (Admission::FastFail, None));
        let late = t0 + SimDuration::from_micros(512);
        let (adm, tr) = b.admit(late);
        assert_eq!(adm, Admission::Probe);
        assert_eq!(
            tr,
            Some(Transition {
                from: BreakerState::Open,
                to: BreakerState::HalfOpen,
            })
        );
    }

    #[test]
    fn half_open_closes_after_budget_successes_and_reopens_on_failure() {
        let mut b = breaker();
        let t0 = SimTime::ZERO;
        for _ in 0..4 {
            b.record(t0, false);
        }
        let late = t0 + SimDuration::from_micros(512);
        assert_eq!(b.admit(late).0, Admission::Probe);
        assert_eq!(b.record(late, true), None, "1 of 2 probes is not enough");
        assert_eq!(b.admit(late).0, Admission::Probe);
        let tr = b.record(late, true).expect("2nd clean probe readmits");
        assert_eq!(tr.to, BreakerState::Closed);

        // Trip again, probe, fail the probe: straight back to Open.
        for _ in 0..4 {
            b.record(late, false);
        }
        let later = late + SimDuration::from_micros(512);
        assert_eq!(b.admit(later).0, Admission::Probe);
        let tr = b.record(later, false).expect("failed probe reopens");
        assert_eq!(tr.from, BreakerState::HalfOpen);
        assert_eq!(tr.to, BreakerState::Open);
        // And the new window starts from the failure instant.
        assert_eq!(b.admit(later).0, Admission::FastFail);
    }

    #[test]
    fn outcomes_landing_while_open_only_feed_health() {
        let mut b = breaker();
        let t = SimTime::ZERO;
        for _ in 0..4 {
            b.record(t, false);
        }
        let samples = b.health().samples();
        assert_eq!(b.record(t, false), None);
        assert_eq!(b.health().samples(), samples + 1);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    #[should_panic(expected = "probe budget must be at least 1")]
    fn zero_probe_budget_is_rejected() {
        let cfg = SupervisionConfig {
            probe_budget: 0,
            ..SupervisionConfig::conservative()
        };
        let _ = CircuitBreaker::new(cfg, SimDuration::from_micros(1));
    }

    #[test]
    #[should_panic(expected = "ewma_alpha must be in (0, 1]")]
    fn bad_alpha_is_rejected() {
        let cfg = SupervisionConfig {
            ewma_alpha: 0.0,
            ..SupervisionConfig::conservative()
        };
        let _ = cfg.validated();
    }
}

#[cfg(test)]
mod properties {
    //! Property tests for the breaker state machine (ISSUE 6 satellite):
    //! arbitrary outcome/admit sequences never produce an invalid
    //! transition, Open always fast-fails before its window expires,
    //! Half-Open admits at most `probe_budget` probes per episode, and
    //! replaying a sequence is byte-identical.

    use super::*;
    use proptest::prelude::*;
    use proptest::TestCaseError;

    /// One scripted interaction with the breaker.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        /// Consult admission at the current instant.
        Admit,
        /// Feed an outcome.
        Record(bool),
        /// Advance the clock by this many nanoseconds.
        Advance(u64),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            Just(Op::Admit),
            any::<bool>().prop_map(Op::Record),
            (0u64..2_000_000).prop_map(Op::Advance),
        ]
    }

    fn config() -> impl Strategy<Value = SupervisionConfig> {
        (1u32..6, 1u8..5, 1u64..20_000).prop_map(|(trip, budget, open_bits)| {
            SupervisionConfig::conservative()
                .with_trip_consecutive(trip)
                .with_probe_budget(budget)
                .with_open_bits(open_bits)
        })
    }

    /// Replays `ops` against a fresh breaker, checking the transition
    /// alphabet and the fast-fail/probe-budget invariants along the way.
    /// Returns the final (state, health, transition count) for replay
    /// comparison.
    fn drive(
        cfg: SupervisionConfig,
        ops: &[Op],
    ) -> Result<(BreakerState, SlaveHealth, u64), TestCaseError> {
        let open_period = SimDuration::from_nanos(cfg.open_bits * 125);
        let mut b = CircuitBreaker::new(cfg, open_period);
        let mut now = SimTime::ZERO;
        let mut probes_this_episode = 0u32;
        let mut transitions = 0u64;
        for &op in ops {
            let before = b.state();
            match op {
                Op::Advance(ns) => now += SimDuration::from_nanos(ns),
                Op::Admit => {
                    let (adm, tr) = b.admit(now);
                    match (before, adm) {
                        (BreakerState::Closed, Admission::Admit) => {}
                        (BreakerState::Open, Admission::FastFail) => {}
                        (BreakerState::Open, Admission::Probe) => {
                            // Only legal once the window expired, opening a
                            // fresh Half-Open episode.
                            probes_this_episode = 1;
                        }
                        (BreakerState::HalfOpen, Admission::Probe) => {
                            probes_this_episode += 1;
                        }
                        (BreakerState::HalfOpen, Admission::FastFail) => {}
                        (from, adm) => panic!("invalid admission {adm:?} from {from:?}"),
                    }
                    prop_assert!(
                        probes_this_episode <= u32::from(cfg.probe_budget),
                        "half-open admitted {probes_this_episode} probes, budget {}",
                        cfg.probe_budget
                    );
                    check_transition(before, b.state(), tr, &mut transitions)?;
                }
                Op::Record(ok) => {
                    let tr = b.record(now, ok);
                    if b.state() != BreakerState::HalfOpen {
                        probes_this_episode = 0;
                    }
                    check_transition(before, b.state(), tr, &mut transitions)?;
                }
            }
        }
        Ok((b.state(), *b.health(), transitions))
    }

    /// The legal transition alphabet; everything else panics the test.
    fn check_transition(
        before: BreakerState,
        after: BreakerState,
        tr: Option<Transition>,
        transitions: &mut u64,
    ) -> Result<(), TestCaseError> {
        match tr {
            None => prop_assert_eq!(before, after, "silent state change"),
            Some(t) => {
                *transitions += 1;
                prop_assert_eq!(t.from, before);
                prop_assert_eq!(t.to, after);
                let legal = matches!(
                    (t.from, t.to),
                    (BreakerState::Closed, BreakerState::Open)
                        | (BreakerState::Open, BreakerState::HalfOpen)
                        | (BreakerState::HalfOpen, BreakerState::Open)
                        | (BreakerState::HalfOpen, BreakerState::Closed)
                );
                prop_assert!(legal, "illegal transition {:?} -> {:?}", t.from, t.to);
            }
        }
        Ok(())
    }

    proptest! {
        #[test]
        fn arbitrary_sequences_stay_in_the_legal_alphabet(
            cfg in config(),
            ops in proptest::collection::vec(op(), 0..400),
        ) {
            let _ = drive(cfg, &ops)?;
        }

        #[test]
        fn replay_is_byte_identical(
            cfg in config(),
            ops in proptest::collection::vec(op(), 0..400),
        ) {
            let a = drive(cfg, &ops)?;
            let b = drive(cfg, &ops)?;
            prop_assert_eq!(a, b);
        }

        #[test]
        fn open_always_fast_fails_inside_the_window(
            cfg in config(),
            failures in 1u32..10,
        ) {
            let open_period = SimDuration::from_nanos(cfg.open_bits * 125);
            let mut b = CircuitBreaker::new(cfg, open_period);
            let t0 = SimTime::ZERO;
            for _ in 0..(cfg.trip_consecutive + failures) {
                b.record(t0, false);
            }
            prop_assert_eq!(b.state(), BreakerState::Open);
            // Any instant strictly inside the window fast-fails.
            let inside = t0 + SimDuration::from_nanos((cfg.open_bits * 125).saturating_sub(1));
            let (adm, tr) = b.admit(inside);
            prop_assert_eq!(adm, Admission::FastFail);
            prop_assert_eq!(tr, None);
            prop_assert_eq!(b.state(), BreakerState::Open);
        }
    }
}
