//! Gilbert-Elliott two-state burst error channel.
//!
//! The classic model: the channel alternates between a *good* state with a
//! low per-frame error probability and a *bad* state with a high one, with
//! geometric sojourn times in each. Unlike a per-frame Markov step, this
//! implementation is a semi-Markov process over continuous simulated time:
//! sojourns are drawn up front (in frame-times) and pinned to absolute
//! [`SimTime`] instants, so time that passes while a master backs off lets
//! the channel leave a burst — which is exactly the dynamic that makes
//! retry backoff worth modelling.

use tsbus_des::{SimDuration, SimRng, SimTime};

use crate::validate_probability;

/// Parameters of the two-state Gilbert-Elliott channel.
///
/// Transition probabilities are per frame-time: the expected sojourn in the
/// good state is `1 / good_to_bad` frames, and the mean burst length is
/// `1 / bad_to_good` frames.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstParams {
    /// Per-frame corruption probability while the channel is good.
    pub good_error_rate: f64,
    /// Per-frame corruption probability while the channel is bad.
    pub bad_error_rate: f64,
    /// Per-frame probability of leaving the good state.
    pub good_to_bad: f64,
    /// Per-frame probability of leaving the bad state.
    pub bad_to_good: f64,
}

impl BurstParams {
    /// Creates validated parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is NaN or outside `[0, 1]`.
    #[must_use]
    pub fn new(
        good_error_rate: f64,
        bad_error_rate: f64,
        good_to_bad: f64,
        bad_to_good: f64,
    ) -> Self {
        Self {
            good_error_rate: validate_probability("good_error_rate", good_error_rate),
            bad_error_rate: validate_probability("bad_error_rate", bad_error_rate),
            good_to_bad: validate_probability("good_to_bad", good_to_bad),
            bad_to_good: validate_probability("bad_to_good", bad_to_good),
        }
    }

    /// Convenience constructor from mean sojourn lengths (in frames).
    ///
    /// `mean_good_frames` / `mean_bad_frames` are the expected stay in each
    /// state; error rates are the per-frame corruption probabilities there.
    ///
    /// # Panics
    ///
    /// Panics if a mean length is not at least 1, or a rate is invalid.
    #[must_use]
    pub fn with_mean_lengths(
        mean_good_frames: f64,
        mean_bad_frames: f64,
        good_error_rate: f64,
        bad_error_rate: f64,
    ) -> Self {
        assert!(
            mean_good_frames >= 1.0 && mean_bad_frames >= 1.0,
            "mean sojourns must be at least one frame"
        );
        Self::new(
            good_error_rate,
            bad_error_rate,
            1.0 / mean_good_frames,
            1.0 / mean_bad_frames,
        )
    }

    /// Long-run fraction of time spent in the bad state.
    #[must_use]
    pub fn steady_state_bad(&self) -> f64 {
        if self.good_to_bad == 0.0 {
            return 0.0;
        }
        self.good_to_bad / (self.good_to_bad + self.bad_to_good)
    }

    /// Long-run average per-frame error rate.
    #[must_use]
    pub fn mean_error_rate(&self) -> f64 {
        let bad = self.steady_state_bad();
        self.good_error_rate * (1.0 - bad) + self.bad_error_rate * bad
    }
}

/// Which state the channel is currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelState {
    /// Low error rate; sojourn governed by `good_to_bad`.
    Good,
    /// Burst in progress; sojourn governed by `bad_to_good`.
    Bad,
}

/// The evolving channel: ask it whether a frame sent *now* is corrupted.
#[derive(Debug, Clone)]
pub struct GilbertElliott {
    params: BurstParams,
    state: ChannelState,
    /// Absolute instant the current sojourn ends; `None` until first use.
    state_until: Option<SimTime>,
}

impl GilbertElliott {
    /// Creates a channel starting in the good state.
    #[must_use]
    pub fn new(params: BurstParams) -> Self {
        Self {
            params,
            state: ChannelState::Good,
            state_until: None,
        }
    }

    /// The channel's parameters.
    #[must_use]
    pub fn params(&self) -> &BurstParams {
        &self.params
    }

    /// The state the channel was last observed in.
    #[must_use]
    pub fn state(&self) -> ChannelState {
        self.state
    }

    /// Draws whether a frame transmitted at `now` (one frame lasting
    /// `frame_time`) is corrupted, advancing the channel first.
    pub fn corrupts(&mut self, now: SimTime, frame_time: SimDuration, rng: &mut SimRng) -> bool {
        let rate = self.rate_at(now, frame_time, rng);
        rate > 0.0 && rng.chance(rate)
    }

    /// Advances the channel to `now` and returns the per-frame error rate
    /// of the state it is then in (no corruption draw is consumed). Useful
    /// for aggregating several back-to-back frames, e.g. a DMA burst.
    pub fn rate_at(&mut self, now: SimTime, frame_time: SimDuration, rng: &mut SimRng) -> f64 {
        self.advance_to(now, frame_time, rng);
        match self.state {
            ChannelState::Good => self.params.good_error_rate,
            ChannelState::Bad => self.params.bad_error_rate,
        }
    }

    /// Advances the renewal process so the state reflects the instant `now`.
    fn advance_to(&mut self, now: SimTime, frame_time: SimDuration, rng: &mut SimRng) {
        let mut until = match self.state_until {
            Some(t) => t,
            None => {
                let t = now.saturating_add(self.sojourn(frame_time, rng));
                self.state_until = Some(t);
                t
            }
        };
        while now >= until {
            self.state = match self.state {
                ChannelState::Good => ChannelState::Bad,
                ChannelState::Bad => ChannelState::Good,
            };
            until = until.saturating_add(self.sojourn(frame_time, rng));
            self.state_until = Some(until);
        }
    }

    /// Draws a geometric sojourn for the current state, in frame-times.
    fn sojourn(&self, frame_time: SimDuration, rng: &mut SimRng) -> SimDuration {
        let leave = match self.state {
            ChannelState::Good => self.params.good_to_bad,
            ChannelState::Bad => self.params.bad_to_good,
        };
        let frames = if leave <= 0.0 {
            // Absorbing state: effectively forever.
            u64::MAX / 4
        } else if leave >= 1.0 {
            1
        } else {
            // Inverse-CDF geometric draw: support {1, 2, ...}.
            let u = rng.uniform_f64();
            let f = ((1.0 - u).ln() / (1.0 - leave).ln()).floor() + 1.0;
            if f >= 1e18 {
                1_000_000_000_000_000_000
            } else {
                f as u64
            }
        };
        saturating_frames(frame_time, frames)
    }
}

/// `frame_time * frames`, saturating instead of overflowing.
fn saturating_frames(frame_time: SimDuration, frames: u64) -> SimDuration {
    let nanos = frame_time.as_nanos().saturating_mul(frames);
    SimDuration::from_nanos(nanos)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FRAME: SimDuration = SimDuration::from_nanos(2000); // 16 bits @ 8 MHz

    #[test]
    fn clean_channel_never_corrupts() {
        let mut ch = GilbertElliott::new(BurstParams::new(0.0, 0.0, 0.1, 0.5));
        let mut rng = SimRng::seeded(1);
        let mut t = SimTime::ZERO;
        for _ in 0..1000 {
            assert!(!ch.corrupts(t, FRAME, &mut rng));
            t = t.saturating_add(FRAME);
        }
    }

    #[test]
    fn always_bad_channel_corrupts_everything() {
        let params = BurstParams::new(0.0, 1.0, 1.0, 0.0);
        let mut ch = GilbertElliott::new(params);
        let mut rng = SimRng::seeded(2);
        // First frame may fall in the initial good sojourn; after that the
        // channel is absorbed into the bad state.
        let mut t = SimTime::from_secs(1);
        let mut corrupted = 0;
        for _ in 0..100 {
            if ch.corrupts(t, FRAME, &mut rng) {
                corrupted += 1;
            }
            t = t.saturating_add(FRAME);
        }
        assert!(
            corrupted >= 99,
            "absorbed bad channel corrupts: {corrupted}/100"
        );
    }

    #[test]
    fn same_seed_same_trace() {
        let params = BurstParams::with_mean_lengths(50.0, 8.0, 0.001, 0.6);
        let trace = |seed| {
            let mut ch = GilbertElliott::new(params);
            let mut rng = SimRng::seeded(seed);
            let mut t = SimTime::ZERO;
            let mut out = Vec::new();
            for _ in 0..500 {
                out.push(ch.corrupts(t, FRAME, &mut rng));
                t = t.saturating_add(FRAME);
            }
            out
        };
        assert_eq!(trace(7), trace(7));
        assert_ne!(trace(7), trace(8), "different seeds give different traces");
    }

    #[test]
    fn errors_cluster_into_bursts() {
        // A harshly bimodal channel: errors should arrive adjacent to other
        // errors far more often than a uniform channel of the same mean.
        let params = BurstParams::with_mean_lengths(200.0, 20.0, 0.0, 0.9);
        let mut ch = GilbertElliott::new(params);
        let mut rng = SimRng::seeded(42);
        let mut t = SimTime::ZERO;
        let trace: Vec<bool> = (0..20_000)
            .map(|_| {
                let c = ch.corrupts(t, FRAME, &mut rng);
                t = t.saturating_add(FRAME);
                c
            })
            .collect();
        let errors = trace.iter().filter(|&&c| c).count();
        assert!(errors > 100, "channel produced too few errors: {errors}");
        let adjacent = trace.windows(2).filter(|w| w[0] && w[1]).count();
        // Uniform with the same mean would see ~errors² / n adjacent pairs;
        // bursts must beat that by an order of magnitude.
        let uniform_expect = (errors * errors) as f64 / trace.len() as f64;
        assert!(
            adjacent as f64 > uniform_expect * 10.0,
            "errors not bursty: {adjacent} adjacent vs uniform {uniform_expect:.1}"
        );
    }

    #[test]
    fn time_passing_escapes_bursts() {
        // With a short mean burst, evaluating two frames far apart should
        // almost never see both bad; back-to-back frames often do.
        let params = BurstParams::with_mean_lengths(10.0, 5.0, 0.0, 1.0);
        let mut both_far = 0;
        for seed in 0..200 {
            let mut ch = GilbertElliott::new(params);
            let mut rng = SimRng::seeded(seed);
            let start = SimTime::ZERO;
            let first = ch.corrupts(start, FRAME, &mut rng);
            // Jump 10 000 frames ahead — far past any single sojourn.
            let later = start.saturating_add(saturating_frames(FRAME, 10_000));
            let second = ch.corrupts(later, FRAME, &mut rng);
            if first && second {
                both_far += 1;
            }
        }
        assert!(
            both_far < 120,
            "distant frames should rarely share a burst: {both_far}/200"
        );
    }

    #[test]
    fn steady_state_math() {
        let p = BurstParams::new(0.0, 1.0, 0.01, 0.09);
        assert!((p.steady_state_bad() - 0.1).abs() < 1e-12);
        assert!((p.mean_error_rate() - 0.1).abs() < 1e-12);
        let clean = BurstParams::new(0.0, 1.0, 0.0, 0.5);
        assert_eq!(clean.steady_state_bad(), 0.0);
    }

    #[test]
    #[should_panic(expected = "bad_error_rate")]
    fn rejects_invalid_rate() {
        let _ = BurstParams::new(0.0, f64::NAN, 0.1, 0.1);
    }
}
