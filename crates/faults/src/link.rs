//! The packet-link fault matrix: loss, jitter, duplication, reordering.
//!
//! This is configuration only — `tsbus-netsim`'s `Link` consumes it at the
//! moment it schedules a delivery. The knobs mirror the relay-transport
//! fault matrix pattern: every effect is seeded, so a trace replays
//! identically from the same master seed.

use tsbus_des::SimDuration;

use crate::validate_probability;

/// Per-direction fault configuration for a packet link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkFaults {
    loss: u64,      // scaled by 2^32 for Eq/Hash friendliness
    duplicate: u64, // scaled by 2^32
    reorder: u64,   // scaled by 2^32
    /// Maximum extra uniform delay added to every delivered packet.
    pub jitter: SimDuration,
    /// Extra delay applied to packets picked for reordering.
    pub reorder_hold: SimDuration,
}

const PROB_SCALE: f64 = 4_294_967_296.0; // 2^32

fn to_scaled(name: &str, p: f64) -> u64 {
    (validate_probability(name, p) * PROB_SCALE) as u64
}

fn from_scaled(s: u64) -> f64 {
    s as f64 / PROB_SCALE
}

impl LinkFaults {
    /// A fault-free link (the default).
    pub const NONE: Self = Self {
        loss: 0,
        duplicate: 0,
        reorder: 0,
        jitter: SimDuration::ZERO,
        reorder_hold: SimDuration::ZERO,
    };

    /// Creates a fault-free configuration; chain `with_*` to arm faults.
    #[must_use]
    pub fn new() -> Self {
        Self::NONE
    }

    /// Sets the independent per-packet drop probability.
    ///
    /// # Panics
    /// Panics if `p` is NaN or outside `[0, 1]`.
    #[must_use]
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss = to_scaled("loss", p);
        self
    }

    /// Sets the independent per-packet duplication probability.
    ///
    /// # Panics
    /// Panics if `p` is NaN or outside `[0, 1]`.
    #[must_use]
    pub fn with_duplication(mut self, p: f64) -> Self {
        self.duplicate = to_scaled("duplicate", p);
        self
    }

    /// Sets uniform random extra delay in `[0, max_jitter]` per packet.
    #[must_use]
    pub fn with_jitter(mut self, max_jitter: SimDuration) -> Self {
        self.jitter = max_jitter;
        self
    }

    /// Sets bounded reordering: with probability `p` a packet is held an
    /// extra `hold`, letting later packets overtake it.
    ///
    /// # Panics
    /// Panics if `p` is NaN or outside `[0, 1]`.
    #[must_use]
    pub fn with_reordering(mut self, p: f64, hold: SimDuration) -> Self {
        self.reorder = to_scaled("reorder", p);
        self.reorder_hold = hold;
        self
    }

    /// The per-packet drop probability.
    #[must_use]
    pub fn loss(&self) -> f64 {
        from_scaled(self.loss)
    }

    /// The per-packet duplication probability.
    #[must_use]
    pub fn duplicate(&self) -> f64 {
        from_scaled(self.duplicate)
    }

    /// The per-packet reordering probability.
    #[must_use]
    pub fn reorder(&self) -> f64 {
        from_scaled(self.reorder)
    }

    /// Whether every fault is disabled (the fast path).
    #[must_use]
    pub fn is_none(&self) -> bool {
        *self == Self::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fault_free() {
        assert!(LinkFaults::default().is_none());
        assert!(LinkFaults::new().is_none());
        assert_eq!(LinkFaults::default(), LinkFaults::NONE);
    }

    #[test]
    fn builders_round_trip() {
        let f = LinkFaults::new()
            .with_loss(0.25)
            .with_duplication(0.5)
            .with_jitter(SimDuration::from_micros(30))
            .with_reordering(0.125, SimDuration::from_micros(100));
        assert!((f.loss() - 0.25).abs() < 1e-9);
        assert!((f.duplicate() - 0.5).abs() < 1e-9);
        assert!((f.reorder() - 0.125).abs() < 1e-9);
        assert_eq!(f.jitter, SimDuration::from_micros(30));
        assert_eq!(f.reorder_hold, SimDuration::from_micros(100));
        assert!(!f.is_none());
    }

    #[test]
    #[should_panic(expected = "loss must be a probability")]
    fn loss_rejects_nan() {
        let _ = LinkFaults::new().with_loss(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "duplicate must be a probability")]
    fn duplication_rejects_out_of_range() {
        let _ = LinkFaults::new().with_duplication(2.0);
    }
}
