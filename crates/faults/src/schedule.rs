//! Timed fault schedules and the driver component that fires them.
//!
//! A [`FaultSchedule`] is a list of `(instant, fault)` pairs. A
//! [`FaultDriver`] registered in the simulation delivers each as a
//! [`FaultCommand`] message to its target component (typically the TpWIRE
//! bus), which interprets the [`FaultKind`]. Keeping the driver generic
//! means any component that understands `FaultCommand` can be faulted the
//! same way.

use tsbus_des::{Component, Context, Message, SimTime};

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The slave with this node id stops responding entirely (no TX
    /// acknowledgement, no stream service) until revived.
    SlaveCrash(u8),
    /// Brings a crashed slave back. Its bus-facing state is stale, so the
    /// next transaction typically walks the slave through its hardware
    /// reset path (the 2048-bit-period timeout of the spec).
    SlaveRevive(u8),
    /// Forces an immediate local reset of the slave's bus interface, as if
    /// its watchdog fired: selection, pointers, and stream toggles revert
    /// to power-on state.
    SlaveReset(u8),
    /// Severs the daisy chain after `after` devices: frames addressed past
    /// the break are lost, and replies from beyond it never return.
    ChainBreak {
        /// Number of chain positions still reachable (0 = nothing).
        after: usize,
    },
    /// Repairs a chain break.
    ChainHeal,
}

/// The message a [`FaultDriver`] delivers at each scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultCommand(pub FaultKind);

/// One scheduled fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// An ordered collection of timed faults.
///
/// # Examples
///
/// ```
/// use tsbus_des::SimTime;
/// use tsbus_faults::{FaultKind, FaultSchedule};
///
/// let schedule = FaultSchedule::new()
///     .at(SimTime::from_millis(10), FaultKind::SlaveCrash(2))
///     .at(SimTime::from_millis(30), FaultKind::SlaveRevive(2));
/// assert_eq!(schedule.events().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a fault at an absolute instant (builder style).
    #[must_use]
    pub fn at(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// The scheduled events, in insertion order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A component that delivers a [`FaultSchedule`] to a target component.
///
/// Register it alongside the components under test; at `start` it schedules
/// every event, then stays silent.
#[derive(Debug)]
pub struct FaultDriver {
    target: tsbus_des::ComponentId,
    schedule: FaultSchedule,
}

impl FaultDriver {
    /// Creates a driver aiming `schedule` at `target`.
    #[must_use]
    pub fn new(target: tsbus_des::ComponentId, schedule: FaultSchedule) -> Self {
        Self { target, schedule }
    }
}

impl Component for FaultDriver {
    fn start(&mut self, ctx: &mut Context<'_>) {
        for event in self.schedule.events() {
            ctx.schedule_at(event.at, self.target, FaultCommand(event.kind));
        }
    }

    fn handle(&mut self, _ctx: &mut Context<'_>, _msg: Box<dyn Message>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsbus_des::{MessageExt, SimDuration, Simulator};

    /// Records every FaultCommand it receives, with its arrival time.
    #[derive(Debug, Default)]
    struct FaultLog {
        seen: Vec<(SimTime, FaultKind)>,
    }

    impl Component for FaultLog {
        fn handle(&mut self, ctx: &mut Context<'_>, msg: Box<dyn Message>) {
            if let Ok(cmd) = msg.downcast::<FaultCommand>() {
                self.seen.push((ctx.now(), cmd.0));
            }
        }
    }

    #[test]
    fn driver_delivers_schedule_in_time_order() {
        let mut sim = Simulator::new();
        let log = sim.add_component("log", FaultLog::default());
        let schedule = FaultSchedule::new()
            .at(
                SimTime::ZERO + SimDuration::from_millis(5),
                FaultKind::SlaveCrash(3),
            )
            .at(
                SimTime::ZERO + SimDuration::from_millis(1),
                FaultKind::ChainBreak { after: 2 },
            )
            .at(
                SimTime::ZERO + SimDuration::from_millis(9),
                FaultKind::ChainHeal,
            );
        sim.add_component("faults", FaultDriver::new(log, schedule));
        sim.run_until(SimTime::from_secs(1));
        let log_ref: &FaultLog = sim.component(log).expect("registered");
        assert_eq!(
            log_ref.seen,
            vec![
                (
                    SimTime::ZERO + SimDuration::from_millis(1),
                    FaultKind::ChainBreak { after: 2 }
                ),
                (
                    SimTime::ZERO + SimDuration::from_millis(5),
                    FaultKind::SlaveCrash(3)
                ),
                (
                    SimTime::ZERO + SimDuration::from_millis(9),
                    FaultKind::ChainHeal
                ),
            ]
        );
    }

    #[test]
    fn empty_schedule_is_inert() {
        let mut sim = Simulator::new();
        let log = sim.add_component("log", FaultLog::default());
        sim.add_component("faults", FaultDriver::new(log, FaultSchedule::new()));
        sim.run_until(SimTime::from_secs(1));
        let log_ref: &FaultLog = sim.component(log).expect("registered");
        assert!(log_ref.seen.is_empty());
    }
}
