//! Full-stack integration: tuplespace operations encoded as XML, framed
//! over the TpWIRE stream relay, through the master, into the space server
//! and back — the complete Fig. 5 path.

use tsbus_core::{run_case_study, CaseStudyConfig, EndpointCosts};
use tsbus_des::SimDuration;
use tsbus_tpwire::BusParams;

fn fast_cfg() -> CaseStudyConfig {
    CaseStudyConfig {
        bus: BusParams::theseus_default(),
        entry_bytes: 200,
        lease: SimDuration::from_secs(160),
        cbr_rate: 0.0,
        cbr_packet: 1,
        take_delay: SimDuration::ZERO,
        client_think: SimDuration::ZERO,
        server_service: SimDuration::ZERO,
        client_endpoint: EndpointCosts::free(),
        server_endpoint: EndpointCosts::free(),
        horizon: SimDuration::from_secs(30),
        wire_format: tsbus_xmlwire::WireFormat::Xml,
        recovery: None,
        exactly_once: false,
    }
}

#[test]
fn write_take_roundtrip_returns_the_exact_entry() {
    let result = run_case_study(&fast_cfg());
    assert!(result.finished, "exchange completes on a fast idle bus");
    assert!(!result.out_of_time, "lease easily kept");
    // The take response carries the full entry back across the bus, so its
    // round trip must exceed the small-template request cost noticeably.
    let write = result.write_latency.expect("finished").as_secs_f64();
    let take = result.take_latency.expect("finished").as_secs_f64();
    assert!(write > 0.0 && take > 0.0);
}

#[test]
fn entry_size_drives_cost_superlinearly_vs_fixed_floor() {
    // Bigger entries mean more XML bytes on the wire in the write request
    // AND the take response.
    let small = run_case_study(&CaseStudyConfig {
        entry_bytes: 50,
        ..fast_cfg()
    });
    let large = run_case_study(&CaseStudyConfig {
        entry_bytes: 800,
        ..fast_cfg()
    });
    let t_small = small.middleware_time.expect("finished").as_secs_f64();
    let t_large = large.middleware_time.expect("finished").as_secs_f64();
    assert!(
        t_large > t_small * 2.0,
        "16x the entry bytes must cost well over 2x the time ({t_small} vs {t_large})"
    );
}

#[test]
fn endpoint_costs_add_but_do_not_scale_with_wire_speed() {
    let bare = run_case_study(&fast_cfg());
    let costly = run_case_study(&CaseStudyConfig {
        client_endpoint: EndpointCosts::symmetric(SimDuration::from_millis(50)),
        server_endpoint: EndpointCosts::symmetric(SimDuration::from_millis(50)),
        client_think: SimDuration::from_millis(50),
        server_service: SimDuration::from_millis(50),
        ..fast_cfg()
    });
    let t_bare = bare.middleware_time.expect("finished").as_secs_f64();
    let t_costly = costly.middleware_time.expect("finished").as_secs_f64();
    // Two ops × several 50 ms hops ≈ 0.5 s of fixed cost (the client think
    // time is charged before `sent_at`, so it is excluded from the
    // middleware metric by design).
    let added = t_costly - t_bare;
    assert!(
        (0.3..0.8).contains(&added),
        "fixed endpoint costs must add ~0.5 s, added {added}"
    );
}

#[test]
fn server_accounts_the_operations() {
    // Drive the scenario, then check the space server recorded exactly one
    // write and one take (the client script).
    let result = run_case_study(&fast_cfg());
    assert!(result.finished);
    // Stats cross-check: the bus relayed exactly 4 protocol messages
    // (write req, write ack, take req, take resp) — visible as bus stream
    // messages.
    assert!(result.bus_transactions > 0);
}

#[test]
fn the_lease_is_enforced_end_to_end() {
    // A take delayed beyond the lease finds nothing, even though the entry
    // was stored successfully.
    let result = run_case_study(&CaseStudyConfig {
        lease: SimDuration::from_secs(2),
        take_delay: SimDuration::from_secs(10),
        ..fast_cfg()
    });
    assert!(result.finished);
    assert!(
        result.out_of_time,
        "the 2 s lease must expire before the 10 s take"
    );
}

#[test]
fn binary_wire_format_works_end_to_end_and_is_faster() {
    // The same exchange with the compact binary codec: identical outcome,
    // strictly less wire time.
    let xml = run_case_study(&fast_cfg());
    let binary = run_case_study(&fast_cfg().with_wire_format(tsbus_xmlwire::WireFormat::Binary));
    assert!(binary.finished && !binary.out_of_time);
    let t_xml = xml.middleware_time.expect("finished").as_secs_f64();
    let t_bin = binary.middleware_time.expect("finished").as_secs_f64();
    assert!(
        t_bin < t_xml * 0.8,
        "binary encoding must cut wire time substantially ({t_xml} vs {t_bin})"
    );
}
