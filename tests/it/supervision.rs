//! Bus supervision end to end: circuit breakers tripping on a live
//! simulated bus, quarantine probing and readmission, n-wire degraded-mode
//! rebalancing with the conservation invariant, and the fast-fail path all
//! the way up to the client's recovery layer.
//!
//! The bus-level tests run a 2-bus wiring with four slaves under idle
//! keep-alive polling only: crashing both slaves of one lane must trip
//! their breakers, evacuate the lane (degraded mode), and — after the
//! scheduled revival — probe them back to Closed and restore the original
//! assignment. The chaos-level test checks that quarantine fast-fails
//! actually reach the scripted client as fast `NetError`s.

use tsbus_core::{run_chaos_trial, ChaosConfig};
use tsbus_des::{SimTime, Simulator};
use tsbus_faults::{BreakerState, FaultDriver, FaultKind, FaultSchedule, SupervisionConfig};
use tsbus_tpwire::{BusParams, BusStats, NodeId, TpWireBus, Wiring};

fn node(id: u8) -> NodeId {
    NodeId::new(id).expect("valid node id")
}

/// Crash both slaves homed on lane 1 (striped plan: positions 1 and 3),
/// then revive them so the lane can be restored.
fn lane_outage() -> FaultSchedule {
    FaultSchedule::new()
        .at(SimTime::from_micros(200), FaultKind::SlaveCrash(2))
        .at(SimTime::from_micros(200), FaultKind::SlaveCrash(4))
        .at(SimTime::from_micros(4000), FaultKind::SlaveRevive(2))
        .at(SimTime::from_micros(4000), FaultKind::SlaveRevive(4))
}

/// A supervised 2-bus, 4-slave bus under the lane outage; returns the bus
/// statistics plus `(degraded at probe time, conserved at probe time,
/// degraded at end, conserved at end)`.
fn run_lane_outage(seed: u64, error_rate: f64) -> (BusStats, [bool; 4]) {
    let mut sim = Simulator::with_seed(seed);
    let params = BusParams::theseus_default()
        .with_wiring(Wiring::parallel_buses(2).expect("valid"))
        .with_frame_error_rate(error_rate)
        .with_supervision(SupervisionConfig::conservative());
    let bus = TpWireBus::new(params, vec![node(1), node(2), node(3), node(4)]);
    let bus_id = sim.add_component("bus", bus);
    sim.add_component("faults", FaultDriver::new(bus_id, lane_outage()));

    // Deep in the outage: both lane-1 breakers should have tripped and the
    // lane should be evacuated by now.
    sim.run_until(SimTime::from_micros(3000));
    let bus_ref: &TpWireBus = sim.component(bus_id).expect("registered");
    let mid_degraded = bus_ref.degraded();
    let mid_conserved = bus_ref.supervision_conserved();

    // Well past the revival: probes readmit, the lane is restored.
    sim.run_until(SimTime::from_micros(20000));
    let bus_ref: &TpWireBus = sim.component(bus_id).expect("registered");
    (
        bus_ref.stats().clone(),
        [
            mid_degraded,
            mid_conserved,
            bus_ref.degraded(),
            bus_ref.supervision_conserved(),
        ],
    )
}

#[test]
fn lane_outage_trips_evacuates_probes_back_and_restores() {
    let mut sim = Simulator::with_seed(11);
    let params = BusParams::theseus_default()
        .with_wiring(Wiring::parallel_buses(2).expect("valid"))
        .with_supervision(SupervisionConfig::conservative());
    let bus = TpWireBus::new(params, vec![node(1), node(2), node(3), node(4)]);
    let bus_id = sim.add_component("bus", bus);
    sim.add_component("faults", FaultDriver::new(bus_id, lane_outage()));

    sim.run_until(SimTime::from_micros(3000));
    let bus_ref: &TpWireBus = sim.component(bus_id).expect("registered");
    assert_eq!(
        bus_ref.breaker_state(node(2)),
        Some(BreakerState::Open),
        "a crashed slave's breaker must trip under keep-alive polling"
    );
    assert_eq!(bus_ref.breaker_state(node(4)), Some(BreakerState::Open));
    assert_eq!(
        bus_ref.breaker_state(node(1)),
        Some(BreakerState::Closed),
        "healthy slaves stay admitted"
    );
    assert!(
        bus_ref.degraded(),
        "both of lane 1's slaves Open must evacuate the lane"
    );
    assert!(
        bus_ref.supervision_conserved(),
        "evacuation must conserve the lane assignment"
    );

    sim.run_until(SimTime::from_micros(20000));
    let bus_ref: &TpWireBus = sim.component(bus_id).expect("registered");
    let stats = bus_ref.stats();
    assert_eq!(
        bus_ref.breaker_state(node(2)),
        Some(BreakerState::Closed),
        "revived slaves must be probed back to Closed"
    );
    assert_eq!(bus_ref.breaker_state(node(4)), Some(BreakerState::Closed));
    assert!(
        !bus_ref.degraded(),
        "full recovery must restore the original assignment"
    );
    assert!(bus_ref.supervision_conserved());
    assert!(stats.breaker_trips >= 2, "both crashed slaves tripped");
    assert!(
        stats.breaker_readmissions >= 2,
        "both came back through Half-Open probation"
    );
    assert!(stats.probes > 0, "readmission takes probe polls");
    assert!(
        stats.rebalances >= 2,
        "one evacuation plus one restoration, got {}",
        stats.rebalances
    );
    assert_eq!(
        stats.open_issues, 0,
        "no request may ever be issued to an Open slave"
    );

    // Availability bookkeeping: the quarantined slaves lost bus time, the
    // healthy ones did not.
    let now = SimTime::from_micros(20000);
    let healthy = bus_ref.slave_availability(node(1), now);
    let quarantined = bus_ref.slave_availability(node(2), now);
    assert!((healthy - 1.0).abs() < 1e-12, "got {healthy}");
    assert!(quarantined < 1.0 && quarantined > 0.0, "got {quarantined}");
}

#[test]
fn supervised_buses_replay_byte_identically_from_a_seed() {
    // A lossy channel keeps the stochastic machinery (burst draws, frame
    // errors) in play; the whole supervised trace must still replay.
    let (stats_a, flags_a) = run_lane_outage(23, 0.01);
    let (stats_b, flags_b) = run_lane_outage(23, 0.01);
    assert_eq!(
        stats_a, stats_b,
        "same seed must reproduce the exact supervised trace"
    );
    assert_eq!(flags_a, flags_b);
    assert!(stats_a.breaker_trips >= 2, "the outage actually tripped");
    let (stats_c, _) = run_lane_outage(24, 0.01);
    assert_ne!(
        stats_a, stats_c,
        "the supervised trace must still depend on the seed"
    );
}

#[test]
fn quarantine_fast_fails_reach_the_client_as_fast_errors() {
    // Chaos storms with supervision on: across a handful of seeds the
    // quarantine machinery must engage (bus-level fast-fails) and surface
    // to the scripted client's recovery layer as fast NetErrors — while
    // every trial stays violation-free, open-issue-free, and conserved.
    let cfg = ChaosConfig {
        supervision: Some(SupervisionConfig::conservative()),
        ..ChaosConfig::default()
    };
    let (mut fast_fails, mut client_fast_fails) = (0u64, 0u64);
    for seed in 0..8 {
        let trial = run_chaos_trial(&cfg, seed);
        assert!(
            trial.violations.is_empty(),
            "seed {seed}: {:?}",
            trial.violations
        );
        assert_eq!(trial.open_issues, 0, "seed {seed}");
        fast_fails += trial.fast_fails;
        client_fast_fails += trial.client_fast_fails;
    }
    assert!(fast_fails > 0, "the storms never engaged a breaker");
    assert!(
        client_fast_fails > 0,
        "bus fast-fails must propagate to the client as fast NetErrors"
    );
}
