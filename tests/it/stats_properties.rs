//! Property tests on the shared statistics primitives every registry
//! instrument is built from: `Histogram` and `Summary` from
//! `tsbus_des::stats`. The observability spine folds per-layer snapshots
//! together, so merge has to behave like exact set union — counts
//! conserved, order irrelevant, quantiles monotone — for arbitrary data.

use proptest::prelude::*;
use tsbus_des::stats::{Histogram, Summary};

const LOW: f64 = 0.0;
const HIGH: f64 = 100.0;
const BINS: usize = 16;

fn histogram_of(values: &[f64]) -> Histogram {
    let mut h = Histogram::new(LOW, HIGH, BINS);
    for &v in values {
        h.record(v);
    }
    h
}

fn summary_of(values: &[f64]) -> Summary {
    let mut s = Summary::new();
    for &v in values {
        s.record(v);
    }
    s
}

/// Samples spanning underflow, in-range, and overflow territory. Drawn
/// as centivalue integers (the vendored proptest has no float ranges);
/// the /100 keeps them off bin edges often enough to matter.
fn samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((-5000i32..15000).prop_map(|v| f64::from(v) / 100.0), 0..60)
}

proptest! {
    /// Merging histograms is associative and commutative: (a ∪ b) ∪ c and
    /// a ∪ (b ∪ c) agree bin for bin, as do a ∪ b and b ∪ a. Counts are
    /// integers, so this is exact, not approximate.
    #[test]
    fn histogram_merge_is_associative_and_commutative(
        a in samples(), b in samples(), c in samples(),
    ) {
        let (ha, hb, hc) = (histogram_of(&a), histogram_of(&b), histogram_of(&c));

        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        let mut right_inner = hb.clone();
        right_inner.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_inner);

        prop_assert_eq!(left.bins(), right.bins());
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.underflow(), right.underflow());
        prop_assert_eq!(left.overflow(), right.overflow());

        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab.bins(), ba.bins());
        prop_assert_eq!(ab.count(), ba.count());
    }

    /// Merging conserves observations: the merged histogram holds exactly
    /// the union of the inputs, split identically across underflow, the
    /// bins, and overflow — and matches recording everything into one
    /// histogram directly.
    #[test]
    fn histogram_merge_conserves_counts(a in samples(), b in samples()) {
        let mut merged = histogram_of(&a);
        merged.merge(&histogram_of(&b));

        let all: Vec<f64> = a.iter().chain(&b).copied().collect();
        let direct = histogram_of(&all);

        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(merged.bins(), direct.bins());
        prop_assert_eq!(merged.underflow(), direct.underflow());
        prop_assert_eq!(merged.overflow(), direct.overflow());
        prop_assert_eq!(
            merged.underflow() + merged.overflow()
                + merged.bins().iter().sum::<u64>(),
            merged.count(),
        );
    }

    /// Quantile estimates never decrease as q grows, and stay inside
    /// [low, high] for any sample set.
    #[test]
    fn histogram_quantiles_are_monotone(values in samples()) {
        let h = histogram_of(&values);
        prop_assume!(h.count() > 0);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let mut last = f64::NEG_INFINITY;
        for q in qs {
            let v = h.quantile(q).expect("non-empty");
            prop_assert!(v >= last, "quantile({q}) = {v} dropped below {last}");
            prop_assert!((LOW..=HIGH).contains(&v));
            last = v;
        }
    }

    /// Summary merge combines n, min, and max exactly, and its mean agrees
    /// with a single-pass mean over the union up to floating-point noise.
    #[test]
    fn summary_merge_matches_single_pass(a in samples(), b in samples()) {
        let mut merged = summary_of(&a);
        merged.merge(&summary_of(&b));

        let all: Vec<f64> = a.iter().chain(&b).copied().collect();
        let direct = summary_of(&all);

        prop_assert_eq!(merged.len(), all.len() as u64);
        prop_assert_eq!(merged.min(), direct.min());
        prop_assert_eq!(merged.max(), direct.max());
        if !all.is_empty() {
            prop_assert!((merged.mean() - direct.mean()).abs() < 1e-9);
            prop_assert!((merged.variance() - direct.variance()).abs() < 1e-6);
        }
    }

    /// Merging an empty summary (either direction) is the identity.
    #[test]
    fn summary_empty_merge_is_identity(values in samples()) {
        let base = summary_of(&values);

        let mut left = base;
        left.merge(&Summary::new());
        prop_assert_eq!(left.len(), base.len());
        prop_assert_eq!(left.min(), base.min());
        prop_assert_eq!(left.max(), base.max());

        let mut right = Summary::new();
        right.merge(&base);
        prop_assert_eq!(right.len(), base.len());
        prop_assert_eq!(right.min(), base.min());
        prop_assert_eq!(right.max(), base.max());
        if !values.is_empty() {
            prop_assert!((left.mean() - base.mean()).abs() < 1e-12);
            prop_assert!((right.mean() - base.mean()).abs() < 1e-12);
        }
    }
}
