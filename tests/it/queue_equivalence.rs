//! Cross-queue byte-identity: the kernel's determinism contract promises
//! that the pending-event-set implementation (binary heap vs calendar
//! queue) and the message-box pool are invisible to results. This file
//! makes that promise a property: arbitrary schedule/cancel programs must
//! dispatch identically — same order, same times, same trace — under
//! every queue kind × pooling combination.

use proptest::prelude::*;
use tsbus_des::{
    Component, Context, Message, MessageExt, QueueKind, SimDuration, SimTime, Simulator,
};

/// One scheduling instruction of a generated program.
#[derive(Debug, Clone, Copy)]
struct Instr {
    /// Delay from t=0, in nanoseconds (small range forces time ties, the
    /// case where FIFO tie-breaking order matters).
    delay_ns: u64,
    /// Which recorder receives the event.
    target: u8,
    /// Cancel the event right after scheduling it.
    cancel: bool,
    /// Re-arm a follow-up event on delivery (exercises scheduling from
    /// inside handlers, where calendar buckets resize mid-run).
    rearm: bool,
}

#[derive(Debug)]
struct Evt {
    tag: u64,
    rearm: bool,
}

/// Records every delivery; re-arms once when asked to.
#[derive(Debug, Default)]
struct Recorder {
    log: Vec<(SimTime, u64)>,
}

impl Component for Recorder {
    fn handle(&mut self, ctx: &mut Context<'_>, msg: Box<dyn Message>) {
        let evt = msg.downcast::<Evt>().expect("recorders receive Evt only");
        self.log.push((ctx.now(), evt.tag));
        if evt.rearm {
            let follow_up = Evt {
                tag: evt.tag + 1_000_000,
                rearm: false,
            };
            ctx.schedule_self_in(SimDuration::from_nanos(17), follow_up);
        }
        ctx.recycle_box(evt);
    }
}

/// Replays `program` on a simulator backed by `kind`, returning every
/// observable: per-recorder delivery logs, the kernel trace text, and the
/// dispatched-event count.
fn run_program(
    program: &[Instr],
    kind: QueueKind,
    pooling: bool,
) -> (Vec<Vec<(SimTime, u64)>>, String, u64) {
    const RECORDERS: usize = 3;
    let mut sim = Simulator::with_seed_and_queue(42, kind);
    sim.set_pooling(pooling);
    sim.enable_trace(1 << 16);
    let ids: Vec<_> = (0..RECORDERS)
        .map(|r| sim.add_component(format!("rec{r}"), Recorder::default()))
        .collect();
    sim.with_context(|ctx| {
        for (tag, instr) in program.iter().enumerate() {
            let target = ids[usize::from(instr.target) % RECORDERS];
            let evt = Evt {
                tag: tag as u64,
                rearm: instr.rearm,
            };
            let id = ctx.schedule_in(SimDuration::from_nanos(instr.delay_ns), target, evt);
            if instr.cancel {
                ctx.cancel(id);
            }
        }
    });
    sim.run_until(SimTime::from_secs(1));
    let logs = ids
        .iter()
        .map(|&id| {
            let rec: &Recorder = sim.component(id).expect("registered");
            rec.log.clone()
        })
        .collect();
    (logs, sim.trace().to_text(), sim.events_processed())
}

fn instr_strategy() -> impl Strategy<Value = Instr> {
    (0u64..200, 0u8..3, any::<bool>(), any::<bool>()).prop_map(
        |(delay_ns, target, cancel, rearm)| Instr {
            delay_ns,
            target,
            cancel,
            rearm,
        },
    )
}

proptest! {
    /// The doc-comment contract of `tsbus_des::queue`: queue kind and
    /// pooling are byte-invisible to dispatch order, times and traces.
    #[test]
    fn queue_kind_and_pooling_are_invisible(
        program in proptest::collection::vec(instr_strategy(), 0..120)
    ) {
        let reference = run_program(&program, QueueKind::BinaryHeap, true);
        for kind in [QueueKind::BinaryHeap, QueueKind::Calendar] {
            for pooling in [true, false] {
                if kind == QueueKind::BinaryHeap && pooling {
                    continue; // the reference itself
                }
                let other = run_program(&program, kind, pooling);
                prop_assert_eq!(
                    &reference.0, &other.0,
                    "delivery logs diverged under {:?}/pooling={}", kind, pooling
                );
                prop_assert_eq!(
                    &reference.1, &other.1,
                    "kernel traces diverged under {:?}/pooling={}", kind, pooling
                );
                prop_assert_eq!(
                    reference.2, other.2,
                    "event counts diverged under {:?}/pooling={}", kind, pooling
                );
            }
        }
    }
}

/// Deterministic spot check: a dense burst of same-time events keeps FIFO
/// order on both queues (the tie-break the property above relies on).
#[test]
fn same_time_events_dispatch_fifo_on_both_queues() {
    let program: Vec<Instr> = (0..64)
        .map(|i| Instr {
            delay_ns: 5,
            target: (i % 3) as u8,
            cancel: false,
            rearm: false,
        })
        .collect();
    let heap = run_program(&program, QueueKind::BinaryHeap, true);
    let calendar = run_program(&program, QueueKind::Calendar, true);
    assert_eq!(heap.0, calendar.0);
    for log in &heap.0 {
        let tags: Vec<u64> = log.iter().map(|&(_, tag)| tag).collect();
        let mut sorted = tags.clone();
        sorted.sort_unstable();
        assert_eq!(tags, sorted, "same-time events must keep schedule order");
    }
}
