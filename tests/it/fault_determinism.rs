//! Determinism of the fault-injection layer: a run with every fault class
//! active — burst errors, uniform frame errors, scheduled crash / revive /
//! chain break / heal, and a backoff retry policy — must replay
//! byte-for-byte identically from the same seed, and must actually depend
//! on the seed.

use bytes::Bytes;
use tsbus_core::BusCbrSink;
use tsbus_des::{SimDuration, SimTime, Simulator};
use tsbus_faults::{
    Backoff, BurstParams, FaultDriver, FaultKind, FaultSchedule, RetryParams, RetryPolicy,
};
use tsbus_tpwire::{BusParams, BusStats, NodeId, SendStream, StreamEndpoint, TpWireBus};

fn node(id: u8) -> NodeId {
    NodeId::new(id).expect("valid node id")
}

/// Every fault knob at once: kills, a chain break that heals, and a reset,
/// layered over a bursty, lossy channel.
fn schedule() -> FaultSchedule {
    FaultSchedule::new()
        .at(SimTime::from_millis(4), FaultKind::SlaveCrash(2))
        .at(SimTime::from_millis(8), FaultKind::ChainBreak { after: 1 })
        .at(SimTime::from_millis(12), FaultKind::ChainHeal)
        .at(SimTime::from_millis(14), FaultKind::SlaveRevive(2))
        .at(SimTime::from_millis(18), FaultKind::SlaveReset(3))
}

/// One full faulty run; returns the bus statistics and delivery counters.
fn run(seed: u64) -> (BusStats, u64, u64) {
    let mut sim = Simulator::with_seed(seed);
    let sink = sim.add_component("sink", BusCbrSink::new());
    let params = BusParams::theseus_default()
        .with_frame_error_rate(0.002)
        .with_burst_error(BurstParams::with_mean_lengths(200.0, 8.0, 0.0, 1.0))
        .with_retry_policy(RetryPolicy::uniform(RetryParams {
            max_retries: 6,
            backoff: Backoff::Exponential {
                base_bits: 32,
                cap_bits: 256,
            },
        }));
    let mut bus = TpWireBus::new(params, vec![node(1), node(2), node(3)]);
    bus.attach(node(3), sink);
    let bus_id = sim.add_component("bus", bus);
    sim.add_component("faults", FaultDriver::new(bus_id, schedule()));
    sim.with_context(|ctx| {
        for i in 0..20u64 {
            ctx.schedule_in(
                SimDuration::from_millis(i),
                bus_id,
                SendStream {
                    from: node(1),
                    to: StreamEndpoint::Slave(node(3)),
                    payload: Bytes::from(vec![i as u8; 48]),
                },
            );
        }
    });
    sim.run_until(SimTime::from_millis(200));
    let sink_ref: &BusCbrSink = sim.component(sink).expect("registered");
    let bus_ref: &TpWireBus = sim.component(bus_id).expect("registered");
    (
        bus_ref.stats().clone(),
        sink_ref.messages(),
        sink_ref.bytes(),
    )
}

#[test]
fn identical_seeds_replay_the_full_fault_cocktail_identically() {
    let (stats_a, msgs_a, bytes_a) = run(7);
    let (stats_b, msgs_b, bytes_b) = run(7);
    // BusStats is Eq: every counter — transactions, per-class retries,
    // backoff bookkeeping, hard failures, injected faults — must agree.
    assert_eq!(
        stats_a, stats_b,
        "same seed must reproduce the exact fault trace"
    );
    assert_eq!((msgs_a, bytes_a), (msgs_b, bytes_b));
    // The run must have actually exercised the fault machinery, otherwise
    // this test proves nothing.
    assert!(stats_a.faults_injected >= 5, "all scheduled faults fired");
    assert!(stats_a.retries > 0, "the lossy channel forced retries");
    assert!(stats_a.backoff_events > 0, "the policy actually backed off");
}

#[test]
fn different_seeds_draw_different_fault_traces() {
    let (stats_a, ..) = run(7);
    let (stats_b, ..) = run(8);
    // The scheduled faults are seed-independent, but the stochastic channel
    // (burst sojourns, per-frame errors) is not: some counter must differ.
    assert_ne!(
        stats_a, stats_b,
        "stochastic faults must depend on the seed"
    );
}
