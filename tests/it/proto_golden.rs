//! Differential golden gate for the request-lifecycle refactor.
//!
//! The `tsbus-proto` engine extraction (one outstanding-request table,
//! epoch-gated timers, shared retry/backoff decisions under the client,
//! the shard router, and the TpWIRE master) is required to be
//! **behaviour-preserving**: the same seeds must produce the same
//! simulated outcomes, byte for byte. This test pins that down with
//! point samples of the two campaign figures whose paths cross every
//! ported layer:
//!
//! * `fig_fault_sweep` points — the stream workload under burst
//!   channels and retry policies (the TpWIRE master's frame-retry and
//!   backoff path), plus core chaos trials (the `ScriptedClient`
//!   recovery/reply-timeout path under faults).
//! * `fig_shard_sweep` points — seeded shard trials and shard chaos
//!   storms (the `ShardRouter` sub-request retry/park/flush machinery).
//!
//! The golden file was generated from the pre-refactor tree and is kept
//! as a CI regression gate: any change to retry timing, attempt
//! accounting, or fault handling shows up here as a byte diff. To bless
//! an *intentional* behaviour change, re-run with `BLESS_PROTO_GOLDEN=1`
//! and review the diff like any other golden update.

use std::fmt::Write as _;

use tsbus_bench::workload::{burst_channel, patient_policy, run_stream_workload, REFERENCE_SEED};
use tsbus_core::{run_chaos_trial, ChaosConfig};
use tsbus_des::SimDuration;
use tsbus_faults::{Backoff, RetryParams, RetryPolicy, SupervisionConfig};
use tsbus_shard::{
    run_shard_chaos_trial, run_shard_trial, ReplicationConfig, ShardChaosConfig, ShardConfig,
    ShardTrialConfig,
};

/// The `fig_shard_sweep` trial shape: 1 Mbit/s segments, 2 ms servers,
/// window 32 — the serial wire is the bottleneck (see the binary's docs).
fn shard_trial(shards: u8, replicas: u8) -> ShardTrialConfig {
    let cfg = ShardConfig::new(shards, ReplicationConfig::mirrored(replicas))
        .expect("sample points stay inside the validated range");
    let mut trial = ShardTrialConfig::new(cfg);
    trial.bus.bit_rate_hz = 1_000_000.0;
    trial.service_time = SimDuration::from_millis(2);
    trial.endpoint_cost = SimDuration::from_millis(1);
    trial.workload.window = 32;
    trial
}

/// Renders every lifecycle-relevant observable of the sampled points
/// into one deterministic text block.
fn golden_text() -> String {
    let mut out = String::new();

    // ---- fig_fault_sweep sweep 1 points: burst density, patient policy.
    for gap in [None, Some(800.0_f64), Some(200.0), Some(100.0)] {
        let o = run_stream_workload(
            gap.map(burst_channel),
            patient_policy(),
            30,
            64,
            REFERENCE_SEED,
        );
        writeln!(
            out,
            "stream gap={} delivered={} retries={} failures={} backoff={} intact={} elapsed={:.9}",
            gap.map_or_else(|| "clean".to_owned(), |g| format!("{g:.0}")),
            o.delivered,
            o.retries,
            o.failures,
            o.backoff_events,
            o.intact,
            o.elapsed,
        )
        .expect("write to string");
    }

    // ---- fig_fault_sweep sweep 2 points: policy shootout on the harsh
    // channel (100% in-burst loss).
    let policies: Vec<(&str, RetryPolicy)> = vec![
        ("immediate", RetryPolicy::immediate(3)),
        (
            "fixed64",
            RetryPolicy::uniform(RetryParams {
                max_retries: 3,
                backoff: Backoff::Fixed { bits: 64 },
            }),
        ),
        (
            "exp256-1024",
            RetryPolicy::uniform(RetryParams {
                max_retries: 3,
                backoff: Backoff::Exponential {
                    base_bits: 256,
                    cap_bits: 1024,
                },
            }),
        ),
    ];
    for (name, policy) in policies {
        let o = run_stream_workload(Some(burst_channel(100.0)), policy, 30, 64, REFERENCE_SEED);
        writeln!(
            out,
            "policy {name} delivered={} retries={} failures={} backoff={} elapsed={}",
            o.delivered,
            o.retries,
            o.failures,
            o.backoff_events,
            if o.elapsed.is_nan() {
                "-".to_owned()
            } else {
                format!("{:.9}", o.elapsed)
            },
        )
        .expect("write to string");
    }

    // ---- Core chaos trials: the ScriptedClient recovery path under
    // randomized faults, unsupervised and supervised.
    for (seed, supervised) in [(7, false), (23, false), (23, true), (40, true)] {
        let cfg = ChaosConfig {
            supervision: supervised.then(SupervisionConfig::conservative),
            ..ChaosConfig::default()
        };
        let t = run_chaos_trial(&cfg, seed);
        writeln!(
            out,
            "chaos seed={seed} sup={supervised} violations={} finished={} acked={} taken={} \
             replays={} timeouts={} stale={} retries={} hard={} fast={} cfast={} probes={} \
             rebalances={} wasted={}",
            t.violations.len(),
            t.finished,
            t.writes_acked,
            t.takes_with_entry,
            t.dedup_replays,
            t.reply_timeouts,
            t.stale_replies,
            t.bus_retries,
            t.bus_hard_failures,
            t.fast_fails,
            t.client_fast_fails,
            t.probes,
            t.rebalances,
            t.wasted_bits,
        )
        .expect("write to string");
    }

    // ---- fig_shard_sweep points: seeded clean trials.
    for (shards, replicas, seed) in [(2u8, 1u8, 1u64), (2, 2, 1), (4, 3, 2), (8, 2, 3)] {
        let r = run_shard_trial(&shard_trial(shards, replicas), seed);
        let acked = r.write_acked.iter().filter(|a| **a).count();
        let taken = r.take_entry.iter().filter(|t| **t).count();
        writeln!(
            out,
            "shard s={shards} r={replicas} seed={seed} finished={} ops={} acked={acked} \
             taken={taken} reads={} attempts={} qacks={} qfail={} erases={} retries={} \
             parked={} stale={} repairs={} throughput={:.9}",
            r.finished,
            r.ops_completed,
            r.reads_hit,
            r.attempts_total,
            r.quorum_acks,
            r.quorum_failures,
            r.replica_erases,
            r.retries,
            r.parked_subops,
            r.stale_replies,
            r.repair_writes,
            r.throughput,
        )
        .expect("write to string");
    }

    // ---- Shard chaos storms: the router's degraded-shard park/flush and
    // retry machinery under seeded outages (supervised segments).
    for seed in [5u64, 11, 17] {
        let t = run_shard_chaos_trial(&ShardChaosConfig::default(), seed);
        let r = &t.result;
        writeln!(
            out,
            "shardchaos seed={seed} violations={} faults={} noisy={} finished={} ops={} \
             degraded={} attempts={} retries={} fast={} stale={} parked={} qacks={} qfail={} \
             erases={} repairs={}",
            t.violations.len(),
            t.fault_events,
            t.noisy_segments,
            r.finished,
            r.ops_completed,
            r.degraded_ops,
            r.attempts_total,
            r.retries,
            r.fast_fails,
            r.stale_replies,
            r.parked_subops,
            r.quorum_acks,
            r.quorum_failures,
            r.replica_erases,
            r.repair_writes,
        )
        .expect("write to string");
    }

    out
}

#[test]
fn lifecycle_point_samples_match_the_committed_golden() {
    let got = golden_text();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/proto_lifecycle.txt");
    if std::env::var_os("BLESS_PROTO_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(path).expect(
        "tests/golden/proto_lifecycle.txt missing — generate it with \
         BLESS_PROTO_GOLDEN=1 cargo test -p tsbus-integration --test proto_golden",
    );
    assert_eq!(
        got, want,
        "request-lifecycle point samples drifted from the committed golden; \
         if the behaviour change is intentional, re-bless with BLESS_PROTO_GOLDEN=1"
    );
}
