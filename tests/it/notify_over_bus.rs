//! Subscribe/notify end to end: a monitor client on one slave subscribes,
//! a producer client on another slave writes, and the notification crosses
//! the bus as a pushed `<event>` document — "primitives to support the
//! subscribe and notify paradigm are usually provided" (§2).

use tsbus_core::{ClientStep, EndpointCosts, ScriptedClient, SpaceServerAgent, TpwireEndpoint};
use tsbus_des::{ComponentId, SimDuration, SimTime, Simulator};
use tsbus_tpwire::{BusParams, NodeId, TpWireBus};
use tsbus_tuplespace::{template, tuple, EventKind, ValueType};
use tsbus_xmlwire::Request;

fn node(id: u8) -> NodeId {
    NodeId::new(id).expect("valid test id")
}

/// Topology: server on slave 1, monitor client on slave 2, producer client
/// on slave 3.
fn build(
    monitor_script: Vec<ClientStep>,
    producer_script: Vec<ClientStep>,
) -> (Simulator, ComponentId, ComponentId) {
    build_with_format(
        monitor_script,
        producer_script,
        tsbus_xmlwire::WireFormat::Xml,
    )
}

fn build_with_format(
    monitor_script: Vec<ClientStep>,
    producer_script: Vec<ClientStep>,
    format: tsbus_xmlwire::WireFormat,
) -> (Simulator, ComponentId, ComponentId) {
    let mut sim = Simulator::with_seed(9);
    // Ids: 0 monitor app, 1 producer app, 2 server app,
    //      3 monitor ep, 4 producer ep, 5 server ep, 6 bus.
    let monitor_app = ComponentId::from_raw(0);
    let producer_app = ComponentId::from_raw(1);
    let server_app = ComponentId::from_raw(2);
    let monitor_ep = ComponentId::from_raw(3);
    let producer_ep = ComponentId::from_raw(4);
    let server_ep = ComponentId::from_raw(5);
    let bus_id = ComponentId::from_raw(6);

    sim.add_component(
        "monitor",
        ScriptedClient::new(monitor_ep, node(1), SimDuration::ZERO, monitor_script)
            .with_format(format),
    );
    sim.add_component(
        "producer",
        ScriptedClient::new(producer_ep, node(1), SimDuration::ZERO, producer_script)
            .with_format(format),
    );
    sim.add_component(
        "server",
        SpaceServerAgent::new(server_ep, SimDuration::ZERO),
    );
    sim.add_component(
        "monitor_ep",
        TpwireEndpoint::new(node(2), monitor_app, bus_id, EndpointCosts::free()),
    );
    sim.add_component(
        "producer_ep",
        TpwireEndpoint::new(node(3), producer_app, bus_id, EndpointCosts::free()),
    );
    sim.add_component(
        "server_ep",
        TpwireEndpoint::new(node(1), server_app, bus_id, EndpointCosts::free()),
    );
    let mut bus = TpWireBus::new(
        BusParams::theseus_default(),
        vec![node(1), node(2), node(3)],
    );
    bus.attach(node(1), server_ep);
    bus.attach(node(2), monitor_ep);
    bus.attach(node(3), producer_ep);
    let b = sim.add_component("bus", bus);
    debug_assert_eq!(b, bus_id);
    (sim, monitor_app, producer_app)
}

#[test]
fn written_events_cross_the_bus() {
    let monitor_script = vec![ClientStep::Request(Request::Subscribe {
        template: template!["alert", ValueType::Str],
        kinds: vec![EventKind::Written],
    })];
    let producer_script = vec![
        ClientStep::Delay(SimDuration::from_millis(10)), // after the subscribe
        ClientStep::Request(Request::Write {
            tuple: tuple!["alert", "overtemp"],
            lease_ns: None,
        }),
        ClientStep::Request(Request::Write {
            tuple: tuple!["reading", 42], // non-matching: no event
            lease_ns: None,
        }),
    ];
    let (mut sim, monitor_app, _) = build(monitor_script, producer_script);
    sim.run_until(SimTime::from_millis(200));
    let monitor: &ScriptedClient = sim.component(monitor_app).expect("registered");
    assert!(monitor.is_finished(), "subscribe acknowledged");
    assert!(
        monitor.records()[0].response.is_some(),
        "subscription ack received"
    );
    let events = monitor.notifications();
    assert_eq!(events.len(), 1, "one matching write, one event");
    assert_eq!(events[0].1.kind, EventKind::Written);
    assert_eq!(events[0].1.tuple, tuple!["alert", "overtemp"]);
}

#[test]
fn expiry_events_arrive_without_further_traffic() {
    // The server's expiry sweep must push Expired events on its own — the
    // bus is otherwise idle after the leased write.
    let monitor_script = vec![ClientStep::Request(Request::Subscribe {
        template: template!["ttl"],
        kinds: vec![EventKind::Expired],
    })];
    let producer_script = vec![
        ClientStep::Delay(SimDuration::from_millis(10)),
        ClientStep::Request(Request::Write {
            tuple: tuple!["ttl"],
            lease_ns: Some(50_000_000), // 50 ms
        }),
    ];
    let (mut sim, monitor_app, _) = build(monitor_script, producer_script);
    sim.run_until(SimTime::from_millis(500));
    let monitor: &ScriptedClient = sim.component(monitor_app).expect("registered");
    let events = monitor.notifications();
    assert_eq!(events.len(), 1, "the lease expiry must be pushed");
    assert_eq!(events[0].1.kind, EventKind::Expired);
    // The event arrives shortly after the 50 ms deadline (sweep + wire).
    let arrival = events[0].1.tuple.clone();
    assert_eq!(arrival, tuple!["ttl"]);
    assert!(
        events[0].0 >= SimTime::from_millis(50),
        "no premature expiry"
    );
    assert!(
        events[0].0 < SimTime::from_millis(100),
        "expiry pushed promptly, got {}",
        events[0].0
    );
}

#[test]
fn unsubscribe_stops_the_events() {
    let monitor_script = vec![
        ClientStep::Request(Request::Subscribe {
            template: template!["alert", ValueType::Str],
            kinds: vec![EventKind::Written],
        }),
        ClientStep::Delay(SimDuration::from_millis(50)),
        ClientStep::Request(Request::Unsubscribe { id: 0 }),
    ];
    let producer_script = vec![
        ClientStep::Delay(SimDuration::from_millis(20)),
        ClientStep::Request(Request::Write {
            tuple: tuple!["alert", "first"],
            lease_ns: None,
        }),
        ClientStep::Delay(SimDuration::from_millis(100)),
        ClientStep::Request(Request::Write {
            tuple: tuple!["alert", "second"],
            lease_ns: None,
        }),
    ];
    let (mut sim, monitor_app, _) = build(monitor_script, producer_script);
    sim.run_until(SimTime::from_millis(500));
    let monitor: &ScriptedClient = sim.component(monitor_app).expect("registered");
    let events = monitor.notifications();
    assert_eq!(events.len(), 1, "only the pre-unsubscribe write notifies");
    assert_eq!(events[0].1.tuple, tuple!["alert", "first"]);
}

#[test]
fn notify_works_in_binary_format_too() {
    // Subscribers get their events back in their own wire encoding.
    let monitor_script = vec![ClientStep::Request(Request::Subscribe {
        template: template!["alert", ValueType::Str],
        kinds: vec![EventKind::Written],
    })];
    let producer_script = vec![
        ClientStep::Delay(SimDuration::from_millis(10)),
        ClientStep::Request(Request::Write {
            tuple: tuple!["alert", "binary"],
            lease_ns: None,
        }),
    ];
    let (mut sim, monitor_app, _) = build_with_format(
        monitor_script,
        producer_script,
        tsbus_xmlwire::WireFormat::Binary,
    );
    sim.run_until(SimTime::from_millis(200));
    let monitor: &ScriptedClient = sim.component(monitor_app).expect("registered");
    let events = monitor.notifications();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].1.tuple, tuple!["alert", "binary"]);
}

#[test]
fn service_discovery_works_over_the_wire() {
    // The discovery subsystem is just tuples, so it needs no dedicated
    // protocol: a provider registers by writing the reserved
    // ("__service", name, provider) shape, and a client on another slave
    // looks it up associatively — the §2.1 "support to system extensions"
    // story end to end over the bus.
    let provider_script = vec![ClientStep::Request(Request::Write {
        tuple: tuple!["__service", "fft", "node-7"],
        lease_ns: None,
    })];
    let client_script = vec![
        ClientStep::Delay(SimDuration::from_millis(20)),
        ClientStep::Request(Request::ReadIfExists {
            template: template!["__service", "fft", ValueType::Str],
        }),
    ];
    let (mut sim, client_app, _) = build(client_script, provider_script);
    sim.run_until(SimTime::from_millis(200));
    let client: &ScriptedClient = sim.component(client_app).expect("registered");
    assert!(client.is_finished());
    let lookup = &client.records()[0];
    assert!(
        lookup.returned_entry(),
        "the service registration is visible"
    );
    match lookup.response.as_ref() {
        Some(tsbus_xmlwire::Response::Entry { tuple: Some(t) }) => {
            assert_eq!(t.field(2).and_then(|v| v.as_str()), Some("node-7"));
        }
        other => panic!("expected an entry, got {other:?}"),
    }
}
