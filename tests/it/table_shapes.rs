//! The paper's headline results as regression tests: the *shape* of
//! Table 3, Table 4 and the §3.2/§5 claims must hold on every build.

use tsbus_core::{run_case_study, run_validation, CaseStudyConfig, ValidationConfig};
use tsbus_tpwire::{BusParams, Wiring};

#[test]
fn table3_scaling_factor_converges_to_unity() {
    // The DES model and the analytic (hardware stand-in) model agree to
    // within a fraction of a percent once the burst amortizes startup
    // effects — our analog of the paper's validation scaling factor.
    let bus = BusParams::theseus_default();
    let result = run_validation(&ValidationConfig {
        bus,
        n_messages: 1_000,
        payload: 1,
    });
    assert_eq!(result.delivered, 1_000);
    assert!(
        (0.995..1.01).contains(&result.scaling),
        "scaling factor {} should be ~1.0 at 1000 frames",
        result.scaling
    );
}

#[test]
fn table3_time_is_linear_in_frame_count() {
    let bus = BusParams::theseus_default();
    let t = |n| {
        run_validation(&ValidationConfig {
            bus,
            n_messages: n,
            payload: 1,
        })
        .measured
        .as_secs_f64()
    };
    let (t10, t100, t1000) = (t(10), t(100), t(1_000));
    assert!((8.0..12.0).contains(&(t100 / t10)));
    assert!((8.0..12.0).contains(&(t1000 / t100)));
}

/// The full Table 4 shape, in one test:
/// * middleware time grows monotonically with CBR load on both wirings;
/// * the 2-wire bus is faster, by less than 2x;
/// * exactly one cell — (1-wire, 1 B/s) — goes out of time.
#[test]
fn table4_shape_holds() {
    let base = CaseStudyConfig::table4_reference();
    let two_wire = Wiring::parallel_data(2).expect("valid");

    let cell = |wiring: Wiring, cbr: f64| {
        run_case_study(
            &base
                .with_bus(base.bus.with_wiring(wiring))
                .with_cbr_rate(cbr),
        )
    };

    let one = [
        cell(Wiring::Single, 0.0),
        cell(Wiring::Single, 0.3),
        cell(Wiring::Single, 1.0),
    ];
    let two = [
        cell(two_wire, 0.0),
        cell(two_wire, 0.3),
        cell(two_wire, 1.0),
    ];

    // Out-of-time pattern: only (1-wire, 1 B/s).
    assert!(!one[0].out_of_time, "1-wire / 0 B/s keeps the lease");
    assert!(!one[1].out_of_time, "1-wire / 0.3 B/s keeps the lease");
    assert!(one[2].out_of_time, "1-wire / 1 B/s misses the lease");
    for (i, r) in two.iter().enumerate() {
        assert!(!r.out_of_time, "2-wire cell {i} keeps the lease");
    }

    // Monotonicity in CBR.
    let mt = |r: &tsbus_core::CaseStudyResult| r.middleware_time.expect("finished").as_secs_f64();
    assert!(
        mt(&one[1]) > mt(&one[0]),
        "1-wire: 0.3 B/s slower than idle"
    );
    assert!(
        mt(&two[1]) > mt(&two[0]),
        "2-wire: 0.3 B/s slower than idle"
    );
    assert!(
        mt(&two[2]) > mt(&two[1]),
        "2-wire: 1 B/s slower than 0.3 B/s"
    );

    // Wiring speedup: faster, but sub-2x (the paper's "almost double").
    for (a, b) in one.iter().zip(&two).take(2) {
        let ratio = mt(a) / mt(b);
        assert!(
            (1.05..2.0).contains(&ratio),
            "1-wire/2-wire ratio {ratio} out of the sub-2x band"
        );
    }

    // Rough absolute agreement with the paper (shape band, not exactness):
    // 1-wire idle cell within ±15% of 140 s.
    let idle = mt(&one[0]);
    assert!(
        (119.0..161.0).contains(&idle),
        "1-wire idle cell {idle}s strayed from the paper's 140 s band"
    );
}

#[test]
fn out_of_time_threshold_is_higher_on_two_wires() {
    let base = CaseStudyConfig::table4_reference();
    let two_wire = base
        .bus
        .with_wiring(Wiring::parallel_data(2).expect("valid"));
    let oot = |bus: BusParams, cbr: f64| {
        run_case_study(&base.with_bus(bus).with_cbr_rate(cbr)).out_of_time
    };
    // At 1 B/s: 1-wire fails, 2-wire survives — so the threshold ordering
    // follows without a full bisection.
    assert!(oot(base.bus, 1.0));
    assert!(!oot(two_wire, 1.0));
    // And 2-wire eventually fails too, given heavy enough traffic (there
    // IS a threshold, per §5). Interference per *message* is capped by the
    // master's discovery cadence, so the heavy profile uses bigger CBR
    // packets rather than a higher message rate.
    let mut heavy = base.with_bus(two_wire).with_cbr_rate(8.0);
    heavy.cbr_packet = 16;
    assert!(
        run_case_study(&heavy).out_of_time,
        "even the 2-wire bus must saturate under enough CBR"
    );
}

#[test]
fn parallel_buses_also_help_the_case_study() {
    // Mode B (two independent buses) separates the CBR flow from the
    // client flow entirely, so the loaded exchange approaches the idle one.
    let base = CaseStudyConfig::table4_reference();
    let mode_b = base
        .bus
        .with_wiring(Wiring::parallel_buses(2).expect("valid"));
    let loaded_b = run_case_study(&base.with_bus(mode_b).with_cbr_rate(1.0));
    assert!(
        !loaded_b.out_of_time,
        "two independent buses must keep the lease at 1 B/s"
    );
    let loaded_a = run_case_study(&base.with_cbr_rate(1.0));
    assert!(loaded_a.out_of_time, "single wire fails at the same load");
}
