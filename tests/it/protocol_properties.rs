//! Property tests across the protocol layers: arbitrary tuples survive the
//! XML wire codec, arbitrary chunkings survive message reassembly, and the
//! two composed survive each other.

use bytes::Bytes;
use proptest::prelude::*;
use tsbus_core::MessageAssembler;
use tsbus_tuplespace::{Pattern, Template, Tuple, Value, ValueType};
use tsbus_xmlwire::{
    request_from_xml, request_to_xml, response_from_xml, response_to_xml, Request, Response,
};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN payloads are not preserved by decimal
        // text (covered separately in the xmlwire unit tests).
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::Float),
        "\\PC{0,24}".prop_map(Value::Str), // arbitrary printable unicode
        any::<bool>().prop_map(Value::Bool),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value::Bytes),
    ]
}

fn tuple_strategy() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(value_strategy(), 0..6).prop_map(Tuple::new)
}

fn pattern_strategy() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        value_strategy().prop_map(Pattern::Exact),
        prop_oneof![
            Just(ValueType::Int),
            Just(ValueType::Float),
            Just(ValueType::Str),
            Just(ValueType::Bool),
            Just(ValueType::Bytes),
        ]
        .prop_map(Pattern::AnyOfType),
        Just(Pattern::Wildcard),
    ]
}

fn template_strategy() -> impl Strategy<Value = Template> {
    proptest::collection::vec(pattern_strategy(), 0..6).prop_map(Template::new)
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        (tuple_strategy(), proptest::option::of(any::<u64>()))
            .prop_map(|(tuple, lease_ns)| Request::Write { tuple, lease_ns }),
        (template_strategy(), proptest::option::of(any::<u64>())).prop_map(
            |(template, timeout_ns)| Request::Take {
                template,
                timeout_ns
            }
        ),
        (template_strategy(), proptest::option::of(any::<u64>())).prop_map(
            |(template, timeout_ns)| Request::Read {
                template,
                timeout_ns
            }
        ),
        template_strategy().prop_map(|template| Request::ReadIfExists { template }),
        template_strategy().prop_map(|template| Request::TakeIfExists { template }),
        template_strategy().prop_map(|template| Request::Count { template }),
    ]
}

proptest! {
    /// Any request survives the XML wire.
    #[test]
    fn requests_roundtrip_the_wire(request in request_strategy()) {
        let xml = request_to_xml(&request);
        prop_assert_eq!(request_from_xml(&xml).expect("own encoding decodes"), request);
    }

    /// Any entry/count/error response survives the XML wire.
    #[test]
    fn responses_roundtrip_the_wire(
        tuple in proptest::option::of(tuple_strategy()),
        count in any::<u64>(),
        message in "\\PC{0,64}",
    ) {
        for response in [
            Response::WriteAck,
            Response::Entry { tuple: tuple.clone() },
            Response::Count { count },
            Response::Error { message: message.clone() },
        ] {
            let xml = response_to_xml(&response);
            prop_assert_eq!(
                response_from_xml(&xml).expect("own encoding decodes"),
                response
            );
        }
    }

    /// Reassembly is chunking-invariant: however a message is sliced into
    /// transport chunks, the assembler reproduces it exactly.
    #[test]
    fn reassembly_is_chunking_invariant(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        cuts in proptest::collection::vec(any::<proptest::sample::Index>(), 0..8),
    ) {
        let mut boundaries: Vec<usize> =
            cuts.iter().map(|ix| ix.index(payload.len() + 1)).collect();
        boundaries.push(0);
        boundaries.push(payload.len());
        boundaries.sort_unstable();
        boundaries.dedup();

        let mut asm = MessageAssembler::new();
        let mut result = None;
        for window in boundaries.windows(2) {
            let chunk = Bytes::copy_from_slice(&payload[window[0]..window[1]]);
            let last = window[1] == payload.len();
            let out = asm.push(chunk, last);
            if last {
                result = out;
            } else {
                prop_assert!(out.is_none());
            }
        }
        // Degenerate case: empty payload with no windows still completes
        // via one empty eom chunk.
        let whole = match result {
            Some(w) => w,
            None => asm.push(Bytes::new(), true).expect("eom completes"),
        };
        prop_assert_eq!(&whole[..], &payload[..]);
    }

    /// Composition: an encoded request chunked arbitrarily, reassembled and
    /// decoded is the original request.
    #[test]
    fn chunked_wire_documents_survive(
        request in request_strategy(),
        chunk_size in 1usize..64,
    ) {
        let xml = request_to_xml(&request);
        let bytes = xml.as_bytes();
        let mut asm = MessageAssembler::new();
        let mut whole = None;
        let chunks: Vec<&[u8]> = bytes.chunks(chunk_size).collect();
        if chunks.is_empty() {
            whole = asm.push(Bytes::new(), true);
        }
        for (i, chunk) in chunks.iter().enumerate() {
            let out = asm.push(
                Bytes::copy_from_slice(chunk),
                i == chunks.len() - 1,
            );
            if i == chunks.len() - 1 {
                whole = out;
            }
        }
        let whole = whole.expect("assembler completes at eom");
        let text = std::str::from_utf8(&whole).expect("xml is utf-8");
        prop_assert_eq!(request_from_xml(text).expect("decodes"), request);
    }

    /// Matching is stable across the wire: if a template matches a tuple,
    /// the decoded copies match too (and vice versa).
    #[test]
    fn matching_commutes_with_the_wire(
        tuple in tuple_strategy(),
        template in template_strategy(),
    ) {
        let t_xml = request_to_xml(&Request::Write { tuple: tuple.clone(), lease_ns: None });
        let p_xml = request_to_xml(&Request::Count { template: template.clone() });
        let Request::Write { tuple: tuple2, .. } =
            request_from_xml(&t_xml).expect("decodes") else { unreachable!() };
        let Request::Count { template: template2 } =
            request_from_xml(&p_xml).expect("decodes") else { unreachable!() };
        prop_assert_eq!(template.matches(&tuple), template2.matches(&tuple2));
    }
}
