//! Figure 1 — the redundant-actuator algorithm, verified step by step on
//! the simulated space under explicit virtual time (the threaded version
//! lives in `examples/redundant_actuator.rs`).

use tsbus_des::{SimDuration, SimTime};
use tsbus_tuplespace::{template, tuple, Lease, Space, ValueType};

const TICK: u64 = 1; // seconds

/// One actuator's per-tick behaviour.
struct Actuator {
    operating: bool,
    alive: bool,
    ticks_operating: u32,
}

impl Actuator {
    fn new() -> Self {
        Actuator {
            operating: false,
            alive: true,
            ticks_operating: 0,
        }
    }

    fn tick(&mut self, space: &mut Space, now: SimTime) {
        if !self.alive {
            return;
        }
        if self.operating {
            self.ticks_operating += 1;
            // Step 3: heartbeat, leased to two ticks so a single missed
            // tick is tolerated but a dead actuator's state evaporates.
            space.write(
                tuple!["actuator-state", "operating OK"],
                Lease::for_duration(now, SimDuration::from_secs(2 * TICK)),
                now,
            );
        } else {
            // Step 4: consume the dual's heartbeat or take over.
            let heartbeat = space.take(&template!["actuator-state", ValueType::Str], now);
            if heartbeat.is_none() {
                self.operating = true;
            }
        }
    }
}

#[test]
fn exactly_one_actuator_wins_the_start_tuple() {
    let mut space = Space::new();
    let t0 = SimTime::ZERO;
    // Step 1: the control agent arms the system.
    space.write(tuple!["actuator-start"], Lease::Forever, t0);

    // Step 2: both actuators race.
    let mut a = Actuator::new();
    let mut b = Actuator::new();
    a.operating = space.take(&template!["actuator-start"], t0).is_some();
    b.operating = space.take(&template!["actuator-start"], t0).is_some();
    assert!(a.operating ^ b.operating, "exactly one winner");

    // Step 1 (control side): the start tuple is gone, so the control loop
    // may begin.
    assert_eq!(space.count(&template!["actuator-start"], t0), 0);
}

#[test]
fn backup_takes_over_within_one_tick_of_a_failure() {
    let mut space = Space::new();
    let t0 = SimTime::ZERO;
    space.write(tuple!["actuator-start"], Lease::Forever, t0);

    let mut primary = Actuator::new();
    let mut backup = Actuator::new();
    primary.operating = space.take(&template!["actuator-start"], t0).is_some();
    backup.operating = space.take(&template!["actuator-start"], t0).is_some();
    assert!(primary.operating && !backup.operating);

    let mut takeover_tick = None;
    for tick in 1..=20u64 {
        let now = SimTime::from_secs(tick * TICK);
        if tick == 8 {
            primary.alive = false; // silent crash
        }
        // Primary acts first each tick (writes), backup second (reads).
        primary.tick(&mut space, now);
        backup.tick(&mut space, now);
        if backup.operating && takeover_tick.is_none() {
            takeover_tick = Some(tick);
        }
    }
    let takeover = takeover_tick.expect("backup must take over");
    // The crash happens at tick 8. The backup consumes each heartbeat the
    // same tick it is written, so on tick 8 (the first with no fresh
    // heartbeat) its take comes up empty and it promotes immediately.
    assert_eq!(
        takeover, 8,
        "takeover must follow the crash within one tick"
    );
    assert!(backup.ticks_operating > 0, "backup ran the control program");
}

#[test]
fn no_false_takeover_while_the_primary_is_healthy() {
    let mut space = Space::new();
    let t0 = SimTime::ZERO;
    space.write(tuple!["actuator-start"], Lease::Forever, t0);

    let mut primary = Actuator::new();
    let mut backup = Actuator::new();
    primary.operating = space.take(&template!["actuator-start"], t0).is_some();
    backup.operating = space.take(&template!["actuator-start"], t0).is_some();

    for tick in 1..=50u64 {
        let now = SimTime::from_secs(tick * TICK);
        primary.tick(&mut space, now);
        backup.tick(&mut space, now);
        assert!(
            !backup.operating,
            "healthy heartbeats must keep the backup passive (tick {tick})"
        );
    }
    assert_eq!(primary.ticks_operating, 50);
}

/// N-way redundancy extends the paper's pairwise scheme with a designated
/// dual: besides the start tuple, the control agent writes one
/// "backup-slot" token. Cold standbys race (atomic `take`) for the slot;
/// its holder is the *dual* that watches the heartbeat. On promotion the
/// new operator re-arms the slot so a cold standby becomes the next dual.
/// The space's take-atomicity keeps every transition single-winner.
#[test]
fn three_way_redundancy_promotes_exactly_one_backup() {
    #[derive(Clone, Copy, PartialEq, Debug)]
    enum Role {
        Operating,
        Dual,
        Cold,
    }
    struct Agent {
        role: Role,
        alive: bool,
    }
    impl Agent {
        fn tick(&mut self, space: &mut Space, now: SimTime) {
            if !self.alive {
                return;
            }
            match self.role {
                Role::Operating => {
                    space.write(
                        tuple!["actuator-state", "operating OK"],
                        Lease::for_duration(now, SimDuration::from_secs(2 * TICK)),
                        now,
                    );
                }
                Role::Dual => {
                    if space
                        .take(&template!["actuator-state", ValueType::Str], now)
                        .is_none()
                    {
                        self.role = Role::Operating;
                        // Re-arm the dual slot for a cold standby.
                        space.write(tuple!["backup-slot"], Lease::Forever, now);
                    }
                }
                Role::Cold => {
                    if space.take(&template!["backup-slot"], now).is_some() {
                        self.role = Role::Dual;
                    }
                }
            }
        }
    }

    let mut space = Space::new();
    let t0 = SimTime::ZERO;
    space.write(tuple!["actuator-start"], Lease::Forever, t0);
    space.write(tuple!["backup-slot"], Lease::Forever, t0);

    let mut agents: Vec<Agent> = (0..3)
        .map(|_| Agent {
            role: Role::Cold,
            alive: true,
        })
        .collect();
    for agent in &mut agents {
        if space.take(&template!["actuator-start"], t0).is_some() {
            agent.role = Role::Operating;
        } else if space.take(&template!["backup-slot"], t0).is_some() {
            agent.role = Role::Dual;
        }
    }
    assert_eq!(
        agents.iter().filter(|a| a.role == Role::Operating).count(),
        1
    );
    assert_eq!(agents.iter().filter(|a| a.role == Role::Dual).count(), 1);

    for tick in 1..=20u64 {
        let now = SimTime::from_secs(tick * TICK);
        if tick == 5 {
            for agent in &mut agents {
                if agent.role == Role::Operating {
                    agent.alive = false;
                }
            }
        }
        for agent in &mut agents {
            agent.tick(&mut space, now);
        }
    }
    let live_operating = agents
        .iter()
        .filter(|a| a.alive && a.role == Role::Operating)
        .count();
    let live_dual = agents
        .iter()
        .filter(|a| a.alive && a.role == Role::Dual)
        .count();
    assert_eq!(
        live_operating, 1,
        "exactly one live operator after failover"
    );
    assert_eq!(live_dual, 1, "the cold standby moved up to dual");
}
