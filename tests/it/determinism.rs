//! Cross-crate determinism guarantees: the pending-event-set
//! implementations are interchangeable, and whole scenarios replay
//! bit-identically.

use proptest::prelude::*;
use tsbus_core::{run_case_study, CaseStudyConfig};
use tsbus_des::{
    BinaryHeapQueue, CalendarQueue, Component, ComponentId, Context, EventQueue, Message,
    MessageExt, SimDuration, SimTime, Simulator,
};

/// Records `(time, value)` pairs in arrival order.
#[derive(Default)]
struct Recorder {
    seen: Vec<(u64, u64)>,
}

#[derive(Debug)]
struct Num(u64);

impl Component for Recorder {
    fn handle(&mut self, ctx: &mut Context<'_>, msg: Box<dyn Message>) {
        let num = msg.downcast::<Num>().expect("only Num is scheduled");
        self.seen.push((ctx.now().as_nanos(), num.0));
    }
}

fn run_schedule(queue: Box<dyn EventQueue>, schedule: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut sim = Simulator::with_queue(queue);
    let id = sim.add_component("rec", Recorder::default());
    sim.with_context(|ctx| {
        for &(at, value) in schedule {
            ctx.schedule_at(SimTime::from_nanos(at), id, Num(value));
        }
    });
    sim.run(schedule.len() as u64 + 10);
    sim.component::<Recorder>(id)
        .expect("registered")
        .seen
        .clone()
}

proptest! {
    /// The binary heap and the calendar queue produce identical event
    /// orders for arbitrary schedules — the determinism contract that makes
    /// them interchangeable.
    #[test]
    fn queue_implementations_are_equivalent(
        schedule in proptest::collection::vec((0u64..1_000_000, any::<u64>()), 0..200)
    ) {
        let heap = run_schedule(Box::new(BinaryHeapQueue::new()), &schedule);
        let calendar = run_schedule(Box::new(CalendarQueue::new()), &schedule);
        prop_assert_eq!(heap, calendar);
    }
}

#[test]
fn queue_equivalence_with_bursty_times() {
    // Many events at identical timestamps: FIFO tie-breaking must agree.
    let schedule: Vec<(u64, u64)> = (0..300u64).map(|i| (i % 7 * 1000, i)).collect();
    let heap = run_schedule(Box::new(BinaryHeapQueue::new()), &schedule);
    let calendar = run_schedule(Box::new(CalendarQueue::new()), &schedule);
    assert_eq!(heap, calendar);
}

#[test]
fn case_study_replays_identically() {
    let cfg = CaseStudyConfig::table4_reference().with_cbr_rate(0.3);
    let a = run_case_study(&cfg);
    let b = run_case_study(&cfg);
    assert_eq!(a.total_time, b.total_time);
    assert_eq!(a.middleware_time, b.middleware_time);
    assert_eq!(a.bus_transactions, b.bus_transactions);
    assert_eq!(a.cbr_delivered_bytes, b.cbr_delivered_bytes);
    assert_eq!(a.out_of_time, b.out_of_time);
}

/// A fractional-second CBR rate exercises non-integer event spacing; the
/// run must still be reproducible (no float-order sensitivity).
#[test]
fn fractional_rates_are_deterministic() {
    let cfg = CaseStudyConfig::table4_reference().with_cbr_rate(0.37);
    let a = run_case_study(&cfg);
    let b = run_case_study(&cfg);
    assert_eq!(a.bus_transactions, b.bus_transactions);
}

#[test]
fn sub_streams_isolate_model_randomness() {
    // Adding RNG draws in one named stream must not shift another's
    // sequence — the property that keeps seeded experiments comparable
    // across model changes.
    let mut sim = Simulator::with_seed(99);
    let mut a1 = sim.rng().stream("traffic");
    let before: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();

    let mut sim2 = Simulator::with_seed(99);
    let mut unrelated = sim2.rng().stream("errors");
    for _ in 0..1000 {
        let _ = unrelated.next_u64();
    }
    let mut a2 = sim2.rng().stream("traffic");
    let after: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
    assert_eq!(before, after);
}

#[test]
fn run_until_slicing_does_not_change_results() {
    // Driving the same simulation in one run_until vs many small slices
    // must be observationally identical.
    let build = |sim: &mut Simulator| -> ComponentId {
        let id = sim.add_component("rec", Recorder::default());
        sim.with_context(|ctx| {
            for i in 0..50u64 {
                ctx.schedule_in(SimDuration::from_millis(i * 7 + 1), id, Num(i));
            }
        });
        id
    };
    let mut one = Simulator::new();
    let id1 = build(&mut one);
    one.run_until(SimTime::from_secs(1));

    let mut sliced = Simulator::new();
    let id2 = build(&mut sliced);
    for step in 1..=100u64 {
        sliced.run_until(SimTime::from_millis(step * 10));
    }
    assert_eq!(
        one.component::<Recorder>(id1).expect("registered").seen,
        sliced.component::<Recorder>(id2).expect("registered").seen
    );
}
