//! Sharded-tier integration: reads survive a quarantined owner shard,
//! and whole trials replay bit-for-bit from a seed.
//!
//! The scenario is the tier's reason to exist: writes land at quorum
//! while every segment is healthy, then the owner shard's server crashes
//! and its supervised bus quarantines it — and the read phase (keyed and
//! scatter-gather alike) must still return every tuple, served by the
//! surviving replica, with the degraded service visible in the router's
//! metrics and trace.

use tsbus_des::{SimDuration, SimTime};
use tsbus_faults::{BurstParams, FaultKind, FaultSchedule, SupervisionConfig};
use tsbus_obs::TraceEvent;
use tsbus_shard::{
    run_shard_trial, server_node, ReplicationConfig, ShardConfig, ShardTrialConfig,
    ShardTrialResult,
};

const ITEMS: u64 = 24;

/// Two shards, full mirroring: every tuple has a copy on both segments,
/// so one crashed shard leaves every key readable.
fn quarantine_config() -> ShardTrialConfig {
    let shard = ShardConfig::new(2, ReplicationConfig::mirrored(2)).expect("valid config");
    let mut cfg = ShardTrialConfig::new(shard);
    cfg.bus.supervision = Some(SupervisionConfig::conservative());
    cfg.workload.n_items = ITEMS;
    cfg.workload.window = 4;
    cfg.workload.takes = false;
    cfg.workload.reads = true;
    // Every fourth read scatters instead of routing by key.
    cfg.workload.scatter_every = 4;
    // Writes drain in the first few seconds; hold the read phase until
    // the owner shard is already down and quarantined.
    cfg.workload.read_delay = Some(SimDuration::from_secs(30));
    cfg.trace_capacity = 4096;
    // Shard 0's server crashes after the writes and stays down through
    // the whole read phase.
    cfg.faults = vec![
        FaultSchedule::new().at(
            SimTime::from_secs(20),
            FaultKind::SlaveCrash(server_node(0).raw()),
        ),
        FaultSchedule::new(),
    ];
    cfg
}

#[test]
fn reads_survive_a_quarantined_owner_shard() {
    let result = run_shard_trial(&quarantine_config(), 0xC0FF_EE01);

    assert!(
        result.finished,
        "the workload must drain with one shard down (stalled at {} ops)",
        result.ops_completed
    );
    assert!(
        result.write_acked.iter().all(|acked| *acked),
        "every write reaches quorum before the crash: {:?}",
        result.write_acked
    );
    // The crash cannot cost a single read: shard 0's keys are served by
    // the replica on shard 1 (keyed reads fall back, scatter-gather
    // tolerates the dead leg).
    assert_eq!(
        result.reads_hit, ITEMS,
        "every read must return its tuple from the surviving replica"
    );
    assert!(
        result.degraded_reads >= 1,
        "reads keyed to the crashed owner must be recorded as degraded"
    );
    assert!(
        result.read_repairs >= result.degraded_reads,
        "every degraded read is also served away from the owner"
    );
    assert!(
        result.shards[0].breaker_trips >= 1,
        "the supervised segment must quarantine the crashed server"
    );
    // The trace carries the same story: at least one read served off the
    // crashed owner while it was marked degraded.
    assert!(
        result.trace.iter().any(|e| matches!(
            e,
            TraceEvent::ReadRepair {
                shard: 0,
                degraded: true,
                ..
            }
        )),
        "expected a degraded ReadRepair trace event for shard 0"
    );
    assert_eq!(result.trace_dropped, 0, "trace buffer sized for the trial");
}

fn fingerprint(r: &ShardTrialResult) -> (u64, u64, u64, u64, u64, u64, u64, String) {
    (
        r.ops_completed,
        r.attempts_total,
        r.reads_hit,
        r.quorum_acks,
        r.read_repairs,
        r.degraded_reads,
        r.retries,
        format!("{:?}|{:?}", r.finished_at, r.shards),
    )
}

#[test]
fn quarantine_trials_replay_identically_from_the_seed() {
    // Burst noise on both segments gives the seed something real to
    // steer: retries, breaker behaviour, and completion times all move.
    let noisy = || {
        let mut cfg = quarantine_config();
        let burst = BurstParams::with_mean_lengths(5_000.0, 200.0, 1e-4, 0.1);
        cfg.bursts = vec![Some(burst), Some(burst)];
        cfg
    };
    let a = run_shard_trial(&noisy(), 7);
    let b = run_shard_trial(&noisy(), 7);
    assert_eq!(
        fingerprint(&a),
        fingerprint(&b),
        "same config + seed must reproduce the trial bit for bit"
    );
    assert_eq!(a.trace.len(), b.trace.len(), "traces replay too");

    let c = run_shard_trial(&noisy(), 8);
    assert_ne!(
        fingerprint(&a),
        fingerprint(&c),
        "a different seed must actually perturb the noisy trial"
    );
}
