//! Campaign-engine guarantees over real DES workloads:
//!
//! 1. a campaign's canonical output is byte-identical whether it runs on
//!    1 thread or N (the JSONL emitter is order-normalized by
//!    construction — results land in campaign order, not completion
//!    order);
//! 2. seed-stream replication actually decorrelates replications;
//! 3. a no-op re-run against the result store skips every point and
//!    reproduces the same bytes.

use std::path::PathBuf;
use tsbus_bench::workload::{burst_channel, patient_policy, run_stream_workload};
use tsbus_lab::{
    run_campaign, Campaign, CsvEmitter, Emitter, ExecOpts, Grid, GridPoint, JsonlEmitter, Metrics,
};

/// The seed-replicated burst workload campaign the tests sweep: four
/// burst densities, three Gilbert-Elliott realizations each.
fn fault_campaign() -> Campaign<GridPoint> {
    Campaign::new(
        "campaign_it",
        Grid::new()
            .axis("gap", [800.0, 400.0, 200.0, 100.0])
            .points(),
    )
    .with_seed(0xDEC0DE)
    .with_replications(3)
}

fn run_fault_point(point: &GridPoint, ctx: tsbus_lab::RunCtx) -> Metrics {
    let o = run_stream_workload(
        Some(burst_channel(point.f64("gap"))),
        patient_policy(),
        30,
        64,
        ctx.seed,
    );
    Metrics::new()
        .u64("delivered", o.delivered)
        .u64("retries", o.retries)
        .u64("backoff_events", o.backoff_events)
        .f64("elapsed", o.elapsed)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsbus-campaign-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn parallel_campaign_is_byte_identical_to_serial() {
    let campaign = fault_campaign();
    let serial = run_campaign(
        &campaign,
        &ExecOpts::serial(),
        GridPoint::key,
        run_fault_point,
    )
    .expect("no store");
    let parallel = run_campaign(
        &campaign,
        &ExecOpts {
            threads: 4,
            cache_dir: None,
        },
        GridPoint::key,
        run_fault_point,
    )
    .expect("no store");
    assert_eq!(serial.simulated, 12);
    assert_eq!(parallel.simulated, 12);
    assert_eq!(
        JsonlEmitter.format(&serial),
        JsonlEmitter.format(&parallel),
        "JSONL output must not depend on thread count"
    );
    assert_eq!(CsvEmitter.format(&serial), CsvEmitter.format(&parallel));
}

#[test]
fn replications_are_decorrelated_but_reproducible() {
    let campaign = fault_campaign();
    let report = run_campaign(
        &campaign,
        &ExecOpts::serial(),
        GridPoint::key,
        run_fault_point,
    )
    .expect("no store");
    // Same point, different seed streams: the burst realizations (and so
    // the retry counts) must differ across replications somewhere.
    let varies = report.points.iter().any(|p| {
        let retries: Vec<i64> = p.reps.iter().map(|m| m.get_i64("retries")).collect();
        retries.windows(2).any(|w| w[0] != w[1])
    });
    assert!(
        varies,
        "seed replication produced identical realizations everywhere"
    );
    // And the whole campaign is reproducible run-to-run.
    let again = run_campaign(
        &campaign,
        &ExecOpts::serial(),
        GridPoint::key,
        run_fault_point,
    )
    .expect("no store");
    assert_eq!(JsonlEmitter.format(&report), JsonlEmitter.format(&again));
}

#[test]
fn changing_the_master_seed_changes_realizations() {
    let a = run_campaign(
        &fault_campaign(),
        &ExecOpts::serial(),
        GridPoint::key,
        run_fault_point,
    )
    .expect("no store");
    let b = run_campaign(
        &fault_campaign().with_seed(0xBEEF),
        &ExecOpts::serial(),
        GridPoint::key,
        run_fault_point,
    )
    .expect("no store");
    assert_ne!(JsonlEmitter.format(&a), JsonlEmitter.format(&b));
}

#[test]
fn cache_hit_rerun_skips_all_points_and_reproduces_bytes() {
    let dir = tmp_dir("cache");
    let campaign = fault_campaign();
    let opts = ExecOpts {
        threads: 2,
        cache_dir: Some(dir.clone()),
    };
    let first = run_campaign(&campaign, &opts, GridPoint::key, run_fault_point).expect("store");
    assert_eq!((first.simulated, first.cached), (12, 0));
    let second = run_campaign(&campaign, &opts, GridPoint::key, run_fault_point).expect("store");
    assert_eq!(
        (second.simulated, second.cached),
        (0, 12),
        "a no-op re-run must be served entirely from the result store"
    );
    assert_eq!(JsonlEmitter.format(&first), JsonlEmitter.format(&second));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cached_and_fresh_results_are_interchangeable() {
    // Run half the grid, then the full grid: the first half must be
    // served from the store, the new half simulated, and the combined
    // output must equal an uncached full run.
    let dir = tmp_dir("half");
    let opts = ExecOpts {
        threads: 1,
        cache_dir: Some(dir.clone()),
    };
    let half = Campaign::new(
        "campaign_it",
        Grid::new().axis("gap", [800.0, 400.0]).points(),
    )
    .with_seed(0xDEC0DE)
    .with_replications(3);
    let r = run_campaign(&half, &opts, GridPoint::key, run_fault_point).expect("store");
    assert_eq!((r.simulated, r.cached), (6, 0));
    let full = fault_campaign();
    let mixed = run_campaign(&full, &opts, GridPoint::key, run_fault_point).expect("store");
    assert_eq!((mixed.simulated, mixed.cached), (6, 6));
    let uncached = run_campaign(&full, &ExecOpts::serial(), GridPoint::key, run_fault_point)
        .expect("no store");
    assert_eq!(JsonlEmitter.format(&mixed), JsonlEmitter.format(&uncached));
    let _ = std::fs::remove_dir_all(&dir);
}
