//! Property tests on tuplespace invariants: conservation (every written
//! tuple is taken at most once and never duplicated), ordering, lease
//! monotonicity — checked over arbitrary operation sequences, and under
//! real thread concurrency on the live server.

use std::collections::HashMap;
use std::time::Duration;

use proptest::prelude::*;
use tsbus_des::{SimDuration, SimTime};
use tsbus_tuplespace::{template, tuple, Lease, Space, SpaceServer, Template, ValueType};

/// One step of a generated workload.
#[derive(Debug, Clone)]
enum Op {
    /// Write ("k", tag) with an optional lease (in seconds from now).
    Write {
        tag: i64,
        lease_secs: Option<u8>,
    },
    Take,
    Read,
    AdvanceSecs(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<i64>(), proptest::option::of(1u8..30))
            .prop_map(|(tag, lease_secs)| Op::Write { tag, lease_secs }),
        Just(Op::Take),
        Just(Op::Read),
        (1u8..10).prop_map(Op::AdvanceSecs),
    ]
}

proptest! {
    /// Conservation: takes + live + expired == writes, for any op sequence.
    #[test]
    fn writes_are_conserved(ops in proptest::collection::vec(op_strategy(), 0..80)) {
        let mut space = Space::new();
        let mut now = SimTime::ZERO;
        let tpl = template!["k", ValueType::Int];
        let mut writes = 0u64;
        let mut takes = 0u64;
        for op in ops {
            match op {
                Op::Write { tag, lease_secs } => {
                    let lease = match lease_secs {
                        None => Lease::Forever,
                        Some(s) => Lease::for_duration(now, SimDuration::from_secs(u64::from(s))),
                    };
                    space.write(tuple!["k", tag], lease, now);
                    writes += 1;
                }
                Op::Take => {
                    if space.take(&tpl, now).is_some() {
                        takes += 1;
                    }
                }
                Op::Read => {
                    let _ = space.read(&tpl, now);
                }
                Op::AdvanceSecs(s) => {
                    now += SimDuration::from_secs(u64::from(s));
                }
            }
        }
        // Force all pending expirations to be counted.
        space.expire(now);
        let live = space.len(now) as u64;
        let stats = space.stats();
        prop_assert_eq!(stats.writes, writes);
        prop_assert_eq!(stats.takes, takes);
        prop_assert_eq!(
            stats.takes + stats.expirations + live,
            writes,
            "every write is taken once, expired once, or still live"
        );
    }

    /// FIFO ordering: taking drains exact-match writes oldest-first.
    #[test]
    fn takes_drain_in_write_order(tags in proptest::collection::vec(any::<i64>(), 1..30)) {
        let mut space = Space::new();
        let now = SimTime::ZERO;
        for &tag in &tags {
            space.write(tuple!["k", tag], Lease::Forever, now);
        }
        let tpl = template!["k", ValueType::Int];
        let drained: Vec<i64> = std::iter::from_fn(|| {
            space
                .take(&tpl, now)
                .and_then(|t| t.field(1).and_then(|v| v.as_int()))
        })
        .collect();
        prop_assert_eq!(drained, tags);
    }

    /// Lease monotonicity: an entry visible at t is visible at every
    /// earlier probe after its write, and once gone it stays gone.
    #[test]
    fn visibility_is_monotone(lease_secs in 1u64..50, probes in proptest::collection::vec(0u64..100, 1..20)) {
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        let mut space = Space::new();
        space.write(
            tuple!["v"],
            Lease::for_duration(SimTime::ZERO, SimDuration::from_secs(lease_secs)),
            SimTime::ZERO,
        );
        let mut last_seen = true;
        for t in sorted {
            let visible = space.read(&template!["v"], SimTime::from_secs(t)).is_some();
            prop_assert_eq!(visible, t < lease_secs, "at t={}", t);
            prop_assert!(!visible || last_seen, "no resurrection");
            last_seen = visible;
        }
    }
}

/// Thread-level conservation on the live server: N producers × M
/// consumers; every produced job is consumed exactly once.
#[test]
fn live_server_conserves_under_concurrency() {
    let server = SpaceServer::new();
    let producers = 4;
    let consumers = 4;
    let jobs_each = 50;
    let total = producers * jobs_each;

    let producer_handles: Vec<_> = (0..producers)
        .map(|p| {
            let space = server.clone();
            std::thread::spawn(move || {
                for k in 0..jobs_each {
                    space.write(tuple!["job", (p * jobs_each + k) as i64], None);
                }
            })
        })
        .collect();
    let consumer_handles: Vec<_> = (0..consumers)
        .map(|_| {
            let space = server.clone();
            std::thread::spawn(move || {
                let tpl = template!["job", ValueType::Int];
                let mut got = Vec::new();
                loop {
                    match space.take_blocking(&tpl, Some(Duration::from_millis(200))) {
                        Ok(job) => {
                            got.push(job.field(1).and_then(|v| v.as_int()).expect("int tag"));
                        }
                        Err(_) => return got, // queue drained
                    }
                }
            })
        })
        .collect();
    for h in producer_handles {
        h.join().expect("producer thread");
    }
    let mut seen: HashMap<i64, u32> = HashMap::new();
    for h in consumer_handles {
        for tag in h.join().expect("consumer thread") {
            *seen.entry(tag).or_default() += 1;
        }
    }
    assert_eq!(seen.len(), total, "every job consumed");
    assert!(
        seen.values().all(|&count| count == 1),
        "no job consumed twice"
    );
    assert!(server.is_empty(), "nothing left behind");
}

/// Transactions compose with concurrency: racing transactional takes of
/// one entry admit exactly one winner even across threads.
#[test]
fn transactional_take_is_single_winner_across_threads() {
    for _round in 0..20 {
        let server = SpaceServer::new();
        server.write(tuple!["token"], None);
        let winners: Vec<bool> = (0..4)
            .map(|_| {
                let space = server.clone();
                std::thread::spawn(move || {
                    let txn = space.transaction();
                    let won = txn.take(&template!["token"]).is_some();
                    txn.commit();
                    won
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("taker thread"))
            .collect();
        assert_eq!(
            winners.iter().filter(|&&w| w).count(),
            1,
            "exactly one transactional winner"
        );
    }
}

/// `Template::any` composes with leases at scale: a churning space keeps
/// its count consistent with a parallel model.
#[test]
fn count_matches_model_under_churn() {
    let mut space = Space::new();
    let mut model: Vec<(i64, Option<u64>)> = Vec::new(); // (tag, deadline)
    let mut now = 0u64;
    for i in 0..500i64 {
        now += 1;
        let deadline = (i % 3 == 0).then_some(now + 10);
        let lease = match deadline {
            None => Lease::Forever,
            Some(d) => Lease::Until(SimTime::from_secs(d)),
        };
        space.write(tuple!["c", i], lease, SimTime::from_secs(now));
        model.push((i, deadline));
        if i % 5 == 0 {
            let _ = space.take(&template!["c", ValueType::Int], SimTime::from_secs(now));
            // Model: remove the oldest live entry.
            let live_idx = model.iter().position(|&(_, d)| d.is_none_or(|d| now < d));
            if let Some(idx) = live_idx {
                model.remove(idx);
            }
        }
        let expected = model
            .iter()
            .filter(|&&(_, d)| d.is_none_or(|d| now < d))
            .count();
        assert_eq!(
            space.count(&Template::any(2), SimTime::from_secs(now)),
            expected,
            "at step {i}"
        );
    }
}

// ---------------------------------------------------------------------
// Indexed vs scan equivalence
// ---------------------------------------------------------------------

/// A template shape for the equivalence workload: exact-key templates
/// ride the key-field index, the rest fall back to the scan path.
#[derive(Debug, Clone, Copy)]
enum Probe {
    /// `("k", key)` — bucket lookup when indexed.
    ExactKey(u8),
    /// `("k", any int)` — wildcard at the key field, always a scan.
    TypedKey,
    /// `(*, *)` — full wildcard.
    Wild,
    /// `(*)` — arity-1, never matches the arity-2 writes.
    WrongArity,
}

impl Probe {
    fn template(self) -> Template {
        use tsbus_tuplespace::Pattern;
        match self {
            Probe::ExactKey(key) => template!["k", i64::from(key)],
            Probe::TypedKey => template!["k", ValueType::Int],
            Probe::Wild => Template::new(vec![Pattern::Wildcard, Pattern::Wildcard]),
            Probe::WrongArity => Template::any(1),
        }
    }
}

/// One step of the equivalence workload.
#[derive(Debug, Clone, Copy)]
enum XOp {
    Write { key: u8, lease_secs: Option<u8> },
    Read(Probe),
    ReadAll(Probe),
    Take(Probe),
    Count(Probe),
    Renew { key: u8, lease_secs: u8 },
    AdvanceAndExpire(u8),
}

fn probe_strategy() -> impl Strategy<Value = Probe> {
    prop_oneof![
        (0u8..6).prop_map(Probe::ExactKey),
        Just(Probe::TypedKey),
        Just(Probe::Wild),
        Just(Probe::WrongArity),
    ]
}

fn xop_strategy() -> impl Strategy<Value = XOp> {
    // The vendored proptest has no weighted prop_oneof; repeating the
    // write arm biases the mix toward a populated space.
    prop_oneof![
        (0u8..6, proptest::option::of(1u8..20))
            .prop_map(|(key, lease_secs)| XOp::Write { key, lease_secs }),
        (0u8..6, proptest::option::of(1u8..20))
            .prop_map(|(key, lease_secs)| XOp::Write { key, lease_secs }),
        (0u8..6, proptest::option::of(1u8..20))
            .prop_map(|(key, lease_secs)| XOp::Write { key, lease_secs }),
        probe_strategy().prop_map(XOp::Read),
        probe_strategy().prop_map(XOp::ReadAll),
        probe_strategy().prop_map(XOp::Take),
        probe_strategy().prop_map(XOp::Take),
        probe_strategy().prop_map(XOp::Count),
        (0u8..6, 1u8..20).prop_map(|(key, lease_secs)| XOp::Renew { key, lease_secs }),
        (1u8..8).prop_map(XOp::AdvanceAndExpire),
    ]
}

/// Applies one op and renders every observable it produces (return
/// value, then any notifications drained) as a comparable string.
fn apply_xop(space: &mut Space, op: XOp, now: &mut SimTime) -> String {
    let mut out = match op {
        XOp::Write { key, lease_secs } => {
            let lease = match lease_secs {
                None => Lease::Forever,
                Some(s) => Lease::for_duration(*now, SimDuration::from_secs(u64::from(s))),
            };
            format!(
                "{:?}",
                space.write(tuple!["k", i64::from(key)], lease, *now)
            )
        }
        XOp::Read(probe) => format!("{:?}", space.read(&probe.template(), *now)),
        XOp::ReadAll(probe) => format!("{:?}", space.read_all(&probe.template(), *now)),
        XOp::Take(probe) => format!("{:?}", space.take(&probe.template(), *now)),
        XOp::Count(probe) => format!("{:?}", space.count(&probe.template(), *now)),
        XOp::Renew { key, lease_secs } => {
            let lease = Lease::for_duration(*now, SimDuration::from_secs(u64::from(lease_secs)));
            format!(
                "{:?}",
                space.renew(&Probe::ExactKey(key).template(), lease, *now)
            )
        }
        XOp::AdvanceAndExpire(secs) => {
            *now += SimDuration::from_secs(u64::from(secs));
            space.expire(*now);
            format!("expired@{:?}", *now)
        }
    };
    for notification in space.drain_notifications() {
        out.push_str(&format!(" | {notification:?}"));
    }
    out
}

proptest! {
    /// The key-field index is invisible: an indexed space and a scan-only
    /// space agree on every observable of every op sequence — results,
    /// notification streams, audit trails, stats, deadlines.
    #[test]
    fn indexed_space_is_equivalent_to_scan_space(
        ops in proptest::collection::vec(xop_strategy(), 0..60)
    ) {
        use tsbus_tuplespace::EventKind;
        let mut indexed = Space::new();
        let mut scan = Space::unindexed();
        for space in [&mut indexed, &mut scan] {
            space.enable_audit();
            space.subscribe(
                Template::new(vec![
                    tsbus_tuplespace::Pattern::Wildcard,
                    tsbus_tuplespace::Pattern::Wildcard,
                ]),
                [EventKind::Written, EventKind::Taken, EventKind::Expired],
            );
        }
        let mut now_i = SimTime::ZERO;
        let mut now_s = SimTime::ZERO;
        for (step, op) in ops.iter().enumerate() {
            let a = apply_xop(&mut indexed, *op, &mut now_i);
            let b = apply_xop(&mut scan, *op, &mut now_s);
            prop_assert_eq!(a, b, "step {} ({:?}) diverged", step, op);
        }
        // Terminal sweep + full-state comparison.
        now_i += SimDuration::from_secs(100);
        now_s += SimDuration::from_secs(100);
        indexed.expire(now_i);
        scan.expire(now_s);
        prop_assert_eq!(indexed.len(now_i), scan.len(now_s));
        prop_assert_eq!(indexed.next_deadline(), scan.next_deadline());
        prop_assert_eq!(format!("{:?}", indexed.stats()), format!("{:?}", scan.stats()));
        let audit_i: Vec<String> = indexed.audit().map(|r| format!("{r:?}")).collect();
        let audit_s: Vec<String> = scan.audit().map(|r| format!("{r:?}")).collect();
        prop_assert_eq!(audit_i, audit_s, "audit trails diverged");
        let notif_i: Vec<String> =
            indexed.drain_notifications().iter().map(|n| format!("{n:?}")).collect();
        let notif_s: Vec<String> =
            scan.drain_notifications().iter().map(|n| format!("{n:?}")).collect();
        prop_assert_eq!(notif_i, notif_s, "notification tails diverged");
    }
}
