//! The unified observability snapshot is a pure function of
//! (config, faults, seed): byte-identical across repeat runs, across
//! threads, and stable under the lab metrics bridge. This is the
//! in-process twin of the CI step that diffs `campaign --obs-snapshot`
//! captures taken at different `--threads` settings.

use tsbus_core::{run_case_study_observed, CaseStudyConfig};
use tsbus_faults::FaultSchedule;
use tsbus_lab::snapshot_to_metrics;

fn reference_capture(seed: u64) -> (tsbus_core::CaseStudyResult, String) {
    let cfg = CaseStudyConfig::table4_reference().with_cbr_rate(0.3);
    let (result, snapshot) = run_case_study_observed(&cfg, &FaultSchedule::new(), seed);
    (result, snapshot.to_text())
}

#[test]
fn snapshot_is_byte_identical_across_runs_and_threads() {
    let (here_result, here) = reference_capture(7);
    assert!(here_result.finished);
    assert!(!here.is_empty());

    let (_, again) = reference_capture(7);
    assert_eq!(here, again, "same seed, same process: must match exactly");

    let (_, elsewhere) = std::thread::spawn(|| reference_capture(7))
        .join()
        .expect("capture thread");
    assert_eq!(
        here, elsewhere,
        "thread placement must not leak into metrics"
    );

    // With an empty fault schedule the run is fully deterministic, so the
    // seed is inert — but the workload must steer the capture.
    let quiet = CaseStudyConfig::table4_reference();
    let (_, other) = run_case_study_observed(&quiet, &FaultSchedule::new(), 7);
    assert_ne!(here, other.to_text(), "the workload must steer the capture");
}

#[test]
fn snapshot_spans_every_layer_and_agrees_with_the_result() {
    let cfg = CaseStudyConfig::table4_reference().with_cbr_rate(0.3);
    let (result, snapshot) = run_case_study_observed(&cfg, &FaultSchedule::new(), 7);

    for prefix in ["bus/0/", "server/", "space/", "client/"] {
        assert!(
            snapshot
                .rows()
                .iter()
                .any(|(path, _)| path.starts_with(prefix)),
            "no metrics under '{prefix}' in the unified snapshot",
        );
    }
    assert_eq!(snapshot.count("bus/0/txn/total"), result.bus_transactions);
    assert_eq!(snapshot.count("bus/0/retry/total"), result.bus_retries);
    assert_eq!(snapshot.count("space/op/writes"), result.space_writes);
    assert_eq!(snapshot.count("space/op/takes"), result.space_takes);
    assert_eq!(result.trace_dropped, 0, "no bounded tracer is armed here");

    // The lab bridge carries the whole capture into a Metrics record.
    let metrics = snapshot_to_metrics(&snapshot);
    assert_eq!(metrics.names().len(), snapshot.flatten().len());
    assert_eq!(
        metrics.get_i64("space/op/writes"),
        i64::try_from(result.space_writes).expect("small count"),
    );
}
