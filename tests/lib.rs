//! Integration test package (tests live in `it/`; see Cargo.toml).
