//! Quickstart: the tuplespace in five minutes.
//!
//! Run with `cargo run -p tsbus-core --example quickstart`.
//!
//! Shows the three faces of the workspace:
//! 1. the thread-safe live tuplespace ([`SpaceServer`]) — write/read/take,
//!    leases, blocking ops and notifications;
//! 2. the simulated space ([`Space`]) under explicit virtual time;
//! 3. a complete client↔server exchange over the simulated TpWIRE bus.

use std::time::Duration;

use tsbus_core::{run_case_study, CaseStudyConfig, EndpointCosts};
use tsbus_des::{SimDuration, SimTime};
use tsbus_tpwire::BusParams;
use tsbus_tuplespace::{template, tuple, EventKind, Lease, Space, SpaceServer, ValueType};

fn main() {
    live_space();
    simulated_space();
    over_the_bus();
}

/// Part 1 — the live, threaded space (the Java-prototype analog).
fn live_space() {
    println!("== live tuplespace ==");
    let server = SpaceServer::new();

    // Producer/consumer across threads: the consumer blocks until a
    // matching tuple appears.
    let consumer = {
        let space = server.clone();
        std::thread::spawn(move || {
            space
                .take_blocking(
                    &template!["job", ValueType::Int],
                    Some(Duration::from_secs(2)),
                )
                .expect("producer writes within the timeout")
        })
    };
    server.write(tuple!["job", 42], None);
    let job = consumer.join().expect("consumer thread");
    println!("consumer took {job}");

    // Leases: entries evaporate when their lifetime runs out.
    server.write(tuple!["ephemeral"], Some(Duration::from_millis(20)));
    std::thread::sleep(Duration::from_millis(40));
    assert!(server.read_if_exists(&template!["ephemeral"]).is_none());
    println!("leased entry expired on schedule");

    // Notify: subscribe to writes matching a template.
    let notifications = server.subscribe(template!["alert", ValueType::Str], [EventKind::Written]);
    server.write(tuple!["alert", "overtemp"], None);
    let event = notifications
        .recv_timeout(Duration::from_secs(1))
        .expect("notified");
    println!("notified of {}", event.tuple);
}

/// Part 2 — the same semantics under simulated time.
fn simulated_space() {
    println!("\n== simulated tuplespace (virtual time) ==");
    let mut space = Space::new();
    let t0 = SimTime::ZERO;
    space.write(
        tuple!["entry", 7],
        Lease::for_duration(t0, SimDuration::from_secs(160)),
        t0,
    );
    let at_159 = SimTime::from_secs(159);
    let found = space.take(&template!["entry", ValueType::Int], at_159);
    println!("take at t=159s (lease 160s): {found:?}");
    assert!(found.is_some());
}

/// Part 3 — the full stack: XML protocol over the simulated TpWIRE bus.
fn over_the_bus() {
    println!("\n== client/server over the simulated TpWIRE bus ==");
    let cfg = CaseStudyConfig {
        bus: BusParams::theseus_default(), // 8 Mbit/s, 1-wire
        entry_bytes: 128,
        lease: SimDuration::from_secs(160),
        cbr_rate: 0.0,
        cbr_packet: 1,
        take_delay: SimDuration::ZERO,
        client_think: SimDuration::ZERO,
        server_service: SimDuration::ZERO,
        client_endpoint: EndpointCosts::free(),
        server_endpoint: EndpointCosts::free(),
        horizon: SimDuration::from_secs(10),
        wire_format: tsbus_xmlwire::WireFormat::Xml,
        recovery: None,
        exactly_once: false,
    };
    let result = run_case_study(&cfg);
    println!(
        "write RTT {:.2} ms, take RTT {:.2} ms over the wire — entry {}",
        result.write_latency.expect("finished").as_millis_f64(),
        result.take_latency.expect("finished").as_millis_f64(),
        if result.out_of_time {
            "LOST"
        } else {
            "returned"
        }
    );
    assert!(!result.out_of_time);
}
