//! Subscribe/notify over the simulated bus: an alarm monitor for the
//! factory floor.
//!
//! Run with `cargo run -p tsbus-core --example alarm_monitor`.
//!
//! A monitoring station on Slave 2 subscribes to `("alarm", …)` tuples at
//! the space server on Slave 1; a sensor node on Slave 3 publishes alarms
//! with short leases (an alarm that nobody handles should evaporate, not
//! pile up). Every notification — including the lease expiries — crosses
//! the TpWIRE wire as a pushed `<event>` document.

use tsbus_core::{ClientStep, EndpointCosts, ScriptedClient, SpaceServerAgent, TpwireEndpoint};
use tsbus_des::{ComponentId, SimDuration, SimTime, Simulator};
use tsbus_tpwire::{BusParams, NodeId, TpWireBus};
use tsbus_tuplespace::{template, tuple, EventKind, ValueType};
use tsbus_xmlwire::Request;

fn node(id: u8) -> NodeId {
    NodeId::new(id).expect("static example ids are valid")
}

fn main() {
    println!("Alarm monitoring over TpWIRE (subscribe/notify on the wire)\n");

    let mut sim = Simulator::with_seed(2);
    // Ids: 0 monitor app, 1 sensor app, 2 server app,
    //      3 monitor ep, 4 sensor ep, 5 server ep, 6 bus.
    let monitor_app = ComponentId::from_raw(0);
    let sensor_app = ComponentId::from_raw(1);
    let server_app = ComponentId::from_raw(2);
    let monitor_ep = ComponentId::from_raw(3);
    let sensor_ep = ComponentId::from_raw(4);
    let server_ep = ComponentId::from_raw(5);
    let bus_id = ComponentId::from_raw(6);

    // The monitor: subscribe to every alarm lifecycle event, then idle.
    sim.add_component(
        "monitor",
        ScriptedClient::new(
            monitor_ep,
            node(1),
            SimDuration::ZERO,
            vec![ClientStep::Request(Request::Subscribe {
                template: template!["alarm", ValueType::Str, ValueType::Int],
                kinds: vec![EventKind::Written, EventKind::Taken, EventKind::Expired],
            })],
        ),
    );
    // The sensor: two alarms; the second is acknowledged (taken) by the
    // sensor's own maintenance routine, the first is left to expire.
    sim.add_component(
        "sensor",
        ScriptedClient::new(
            sensor_ep,
            node(1),
            SimDuration::ZERO,
            vec![
                ClientStep::Delay(SimDuration::from_millis(10)),
                ClientStep::Request(Request::Write {
                    tuple: tuple!["alarm", "overtemp", 83],
                    lease_ns: Some(100_000_000), // 100 ms: nobody handles it
                }),
                ClientStep::Delay(SimDuration::from_millis(20)),
                ClientStep::Request(Request::Write {
                    tuple: tuple!["alarm", "vibration", 12],
                    lease_ns: Some(10_000_000_000),
                }),
                ClientStep::Delay(SimDuration::from_millis(20)),
                ClientStep::Request(Request::TakeIfExists {
                    template: template!["alarm", "vibration", ValueType::Int],
                }),
            ],
        ),
    );
    sim.add_component(
        "server",
        SpaceServerAgent::new(server_ep, SimDuration::ZERO),
    );
    sim.add_component(
        "monitor_ep",
        TpwireEndpoint::new(node(2), monitor_app, bus_id, EndpointCosts::free()),
    );
    sim.add_component(
        "sensor_ep",
        TpwireEndpoint::new(node(3), sensor_app, bus_id, EndpointCosts::free()),
    );
    sim.add_component(
        "server_ep",
        TpwireEndpoint::new(node(1), server_app, bus_id, EndpointCosts::free()),
    );
    let mut bus = TpWireBus::new(
        BusParams::theseus_default(),
        vec![node(1), node(2), node(3)],
    );
    bus.attach(node(1), server_ep);
    bus.attach(node(2), monitor_ep);
    bus.attach(node(3), sensor_ep);
    sim.add_component("bus", bus);

    sim.run_until(SimTime::from_millis(400));

    let monitor: &ScriptedClient = sim.component(monitor_app).expect("registered");
    println!("events received by the monitor (all pushed over the bus):");
    for (at, event) in monitor.notifications() {
        let kind = match event.kind {
            EventKind::Written => "RAISED ",
            EventKind::Taken => "HANDLED",
            EventKind::Expired => "EXPIRED",
        };
        println!("  t={at:>9}  {kind}  {}", event.tuple);
    }
    let kinds: Vec<EventKind> = monitor
        .notifications()
        .iter()
        .map(|(_, e)| e.kind)
        .collect();
    assert_eq!(
        kinds,
        vec![
            EventKind::Written, // overtemp raised
            EventKind::Written, // vibration raised
            EventKind::Taken,   // vibration acknowledged
            EventKind::Expired, // overtemp nobody handled
        ],
        "the monitor sees the full alarm lifecycle in order"
    );
    println!(
        "\nThe unhandled overtemp alarm expired on its own lease — the monitor was\n\
         told without polling, and the space never accumulated stale alarms."
    );
}
