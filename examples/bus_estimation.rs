//! The paper's headline experiment, end to end: estimate the impact of the
//! tuplespace middleware on the TpWIRE bus under design.
//!
//! Run with `cargo run -p tsbus-core --example bus_estimation --release`.
//!
//! Builds the Fig. 7 topology (client on Slave1, CBR on Slave2, space
//! server on Slave3, receiver on Slave4), runs the write+take exchange
//! under increasing background load on both the 1-wire bus and the 2-wire
//! parallel-data variant, and prints the Table 4 row structure — the
//! decision data the paper used "to plan the complete development of the
//! bus and the tuplespace".

use tsbus_core::{run_case_study, CaseStudyConfig};
use tsbus_tpwire::Wiring;

fn main() {
    println!("Fig. 7 case study — tuplespace middleware over TpWIRE (lease 160 s)\n");
    let base = CaseStudyConfig::table4_reference();
    let wirings = [
        ("1-wire", Wiring::Single),
        ("2-wire", Wiring::parallel_data(2).expect("valid")),
    ];

    println!(
        "{:<8} {:<10} {:>12} {:>12} {:>14} {:>8}",
        "bus", "CBR", "write RTT", "take RTT", "middleware", "lease"
    );
    for (name, wiring) in wirings {
        for cbr in [0.0, 0.3, 1.0] {
            let cfg = base
                .with_bus(base.bus.with_wiring(wiring))
                .with_cbr_rate(cbr);
            let r = run_case_study(&cfg);
            let fmt = |d: Option<tsbus_des::SimDuration>| {
                d.map_or("-".to_owned(), |d| format!("{:.1}s", d.as_secs_f64()))
            };
            println!(
                "{:<8} {:<10} {:>12} {:>12} {:>14} {:>8}",
                name,
                format!("{cbr} B/s"),
                fmt(r.write_latency),
                fmt(r.take_latency),
                if r.out_of_time {
                    "OUT OF TIME".to_owned()
                } else {
                    fmt(r.middleware_time)
                },
                if r.out_of_time { "missed" } else { "kept" },
            );
        }
    }

    println!(
        "\nReading the estimate: the 1-wire bus keeps the 160 s lease only up to a\n\
         few tenths of a byte/second of competing traffic; doubling the data lines\n\
         (mode A) buys enough headroom for the full 1 B/s profile. This is the\n\
         qualitative + quantitative answer the rapid-prototyping methodology exists\n\
         to produce, before committing silicon or firmware."
    );
}
