//! §2.1 "Support to system extensions" — dynamic device addition and
//! removal through tuplespace service discovery.
//!
//! Run with `cargo run -p tsbus-core --example service_discovery`.
//!
//! Devices exporting a service register themselves in the space; joining
//! devices query the registry and employ the service — no central
//! controller, no reconfiguration. Leased registrations de-register
//! crashed providers automatically.

use std::time::Duration;

use tsbus_des::SimTime;
use tsbus_tuplespace::discovery;
use tsbus_tuplespace::{Lease, Space, SpaceServer};

fn main() {
    println!("§2.1 — service discovery on the tuplespace\n");

    // The live server exposes the raw space for the discovery helpers.
    let server = SpaceServer::new();

    // Two FFT-capable nodes and one logger join the network.
    server.with_space(|space, now| {
        discovery::register(space, "fft", "node-7", Lease::Forever, now);
        discovery::register(space, "fft", "node-9", Lease::Forever, now);
        discovery::register(space, "logging", "node-2", Lease::Forever, now);
    });

    let fft_providers = server.with_space(|space, now| discovery::lookup(space, "fft", now));
    println!("devices offering 'fft':      {fft_providers:?}");
    let log_providers = server.with_space(|space, now| discovery::lookup(space, "logging", now));
    println!("devices offering 'logging':  {log_providers:?}");

    // A producer picks any provider — it never needs to know addresses in
    // advance (anonymous, associative addressing).
    let chosen = server
        .with_space(|space, now| discovery::lookup_one(space, "fft", now))
        .expect("at least one fft provider registered");
    println!("\nproducer dispatches its FFT request to {chosen}");

    // Dynamic removal: node-7 leaves the network cleanly.
    server.with_space(|space, now| {
        let removed = discovery::unregister(space, "fft", "node-7", now);
        assert!(removed);
    });
    let remaining = server.with_space(|space, now| discovery::lookup(space, "fft", now));
    println!("after node-7 unregisters:    {remaining:?}");

    // Crash-stop removal: a provider that registers with a lease and then
    // dies disappears without any cleanup message.
    server.with_space(|space, now| {
        discovery::register(
            space,
            "fft",
            "flaky-node",
            Lease::for_duration(now, Duration::from_millis(30).into()),
            now,
        );
    });
    println!(
        "flaky-node registered (30 ms lease): {:?}",
        server.with_space(|space, now| discovery::lookup(space, "fft", now))
    );
    std::thread::sleep(Duration::from_millis(60));
    println!(
        "after its lease expired:             {:?}",
        server.with_space(|space, now| discovery::lookup(space, "fft", now))
    );

    // The same helpers work on a plain simulated space under virtual time.
    let mut sim_space = Space::new();
    discovery::register(
        &mut sim_space,
        "actuate",
        "sim-node",
        Lease::Until(SimTime::from_secs(100)),
        SimTime::ZERO,
    );
    assert_eq!(
        discovery::lookup(&mut sim_space, "actuate", SimTime::from_secs(50)),
        vec!["sim-node".to_owned()]
    );
    assert!(discovery::lookup(&mut sim_space, "actuate", SimTime::from_secs(100)).is_empty());
    println!("\nsame registry semantics verified under simulated time");
}
