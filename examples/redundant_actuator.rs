//! Figure 1 — redundant actuators with tuplespace-coordinated failover.
//!
//! Run with `cargo run -p tsbus-core --example redundant_actuator`.
//!
//! Implements the paper's §2.1 fault-tolerance algorithm verbatim:
//!
//! 1. at startup the control agent puts a start tuple in the space and
//!    waits until it is removed;
//! 2. every actuator agent races to take it — exactly one wins and becomes
//!    *operating*, the others become *backup*;
//! 3. on each tick the operating actuator writes a heartbeat tuple
//!    ("operating OK");
//! 4. on each tick the backup tries to take the heartbeat; when that fails
//!    (its dual died), it promotes itself and takes over.
//!
//! The example injects a failure and shows the backup picking up within
//! one tick.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tsbus_tuplespace::{template, tuple, SpaceServer, ValueType};

const TICK: Duration = Duration::from_millis(25);

/// One actuator agent; returns the ticks it spent operating.
fn actuator(
    space: SpaceServer,
    name: &'static str,
    crash_after: Option<u32>,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<u32> {
    std::thread::spawn(move || {
        // Step 2: race for the start tuple; one winner operates. The wait
        // is short: a loser learns its role as soon as the tuple is gone.
        let won = space
            .take_blocking(&template!["actuator-start"], Some(TICK))
            .is_ok();
        let mut operating = won;
        if operating {
            println!("{name}: won the start tuple -> OPERATING");
        } else {
            println!("{name}: start tuple already taken -> BACKUP");
        }
        let mut ticks_operating = 0u32;
        while !stop.load(Ordering::Relaxed) {
            std::thread::sleep(TICK);
            if operating {
                // Step 3: execute the control program, publish a heartbeat.
                ticks_operating += 1;
                if crash_after == Some(ticks_operating) {
                    println!("{name}: !! injected failure after {ticks_operating} ticks");
                    return ticks_operating; // the agent dies silently
                }
                space.write(tuple!["actuator-state", "operating OK"], Some(TICK * 2));
            } else {
                // Step 4: consume the dual's heartbeat; if none arrived,
                // begin the recovery procedure.
                let heartbeat = space.take_if_exists(&template!["actuator-state", ValueType::Str]);
                if heartbeat.is_none() {
                    println!("{name}: heartbeat missing -> promoting to OPERATING");
                    operating = true;
                }
            }
        }
        ticks_operating
    })
}

fn main() {
    println!("Figure 1 — redundant actuators over the tuplespace\n");
    let space = SpaceServer::new();
    let stop = Arc::new(AtomicBool::new(false));

    // Step 1: the control agent arms the system.
    space.write(tuple!["actuator-start"], None);

    let primary = actuator(space.clone(), "actuator-A", Some(8), stop.clone());
    std::thread::sleep(Duration::from_millis(5)); // deterministic race winner
    let backup = actuator(space.clone(), "actuator-B", None, stop.clone());

    // The control agent observes the start tuple disappearing (step 1's
    // wait) and then lets the system run through the failure.
    while space.read_if_exists(&template!["actuator-start"]).is_some() {
        std::thread::sleep(Duration::from_millis(1));
    }
    println!("control: start tuple taken, control loop running\n");

    std::thread::sleep(TICK * 20);
    stop.store(true, Ordering::Relaxed);

    let a_ticks = primary.join().expect("actuator A thread");
    let b_ticks = backup.join().expect("actuator B thread");
    println!("\nactuator-A operated for {a_ticks} ticks (then failed)");
    println!("actuator-B operated for {b_ticks} ticks (after taking over)");
    assert!(a_ticks > 0, "A won the race and operated");
    assert!(b_ticks > 0, "B took over after the failure");
    println!("\nfailover complete: the controlled device never lost its actuator");
}
