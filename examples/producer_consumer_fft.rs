//! §2.1 "Scalability of systems" — the FFT producer/consumer pattern.
//!
//! Run with `cargo run -p tsbus-core --example producer_consumer_fft --release`.
//!
//! The paper's motivating example: low-end nodes without FPUs put vectors
//! into the space as `("fft-request", id, samples)`; high-end nodes with
//! FPUs take requests, compute the transform, and write back
//! `("fft-result", id, spectrum)`. "The overall system performance are
//! clearly proportional to the number of consumers" — this example
//! measures exactly that, with a real radix-2 FFT doing the work.

use std::time::{Duration, Instant};

use tsbus_tuplespace::{template, tuple, SpaceServer, Value, ValueType};

/// In-place radix-2 Cooley–Tukey FFT over interleaved re/im pairs.
fn fft(buf: &mut [(f64, f64)]) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "radix-2 FFT needs a power-of-two size");
    // Bit-reversal permutation.
    let mut j = 0;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let angle = -2.0 * std::f64::consts::PI / len as f64;
        let (w_re, w_im) = (angle.cos(), angle.sin());
        for start in (0..n).step_by(len) {
            let (mut cur_re, mut cur_im) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (a_re, a_im) = buf[start + k];
                let (b_re, b_im) = buf[start + k + len / 2];
                let t_re = b_re * cur_re - b_im * cur_im;
                let t_im = b_re * cur_im + b_im * cur_re;
                buf[start + k] = (a_re + t_re, a_im + t_im);
                buf[start + k + len / 2] = (a_re - t_re, a_im - t_im);
                let next_re = cur_re * w_re - cur_im * w_im;
                cur_im = cur_re * w_im + cur_im * w_re;
                cur_re = next_re;
            }
        }
        len <<= 1;
    }
}

/// Serializes f64 samples into a bytes field.
fn pack(samples: &[f64]) -> Vec<u8> {
    samples.iter().flat_map(|s| s.to_le_bytes()).collect()
}

fn unpack(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
        .collect()
}

/// Runs `jobs` FFT requests through `consumers` worker nodes; returns the
/// wall time to drain the queue.
fn run_farm(consumers: usize, jobs: usize, fft_size: usize) -> Duration {
    let space = SpaceServer::new();

    // Producers: cheap nodes that only generate sample vectors.
    for id in 0..jobs {
        let samples: Vec<f64> = (0..fft_size)
            .map(|i| (i as f64 * 0.1 + id as f64).sin())
            .collect();
        space.write(tuple!["fft-request", id as i64, pack(&samples)], None);
    }

    let start = Instant::now();
    let workers: Vec<_> = (0..consumers)
        .map(|_| {
            let space = space.clone();
            std::thread::spawn(move || {
                let wanted = template!["fft-request", ValueType::Int, ValueType::Bytes];
                while let Some(request) = space.take_if_exists(&wanted) {
                    let id = request.field(1).and_then(Value::as_int).expect("int id");
                    let samples =
                        unpack(request.field(2).and_then(Value::as_bytes).expect("bytes"));
                    let mut buf: Vec<(f64, f64)> = samples.iter().map(|&s| (s, 0.0)).collect();
                    // The "high performance node with FPU support" does
                    // real work (repeated to make compute dominate).
                    for _ in 0..200 {
                        fft(&mut buf);
                    }
                    let spectrum: Vec<f64> = buf
                        .iter()
                        .map(|(re, im)| (re * re + im * im).sqrt())
                        .collect();
                    space.write(tuple!["fft-result", id, pack(&spectrum)], None);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker thread");
    }
    let elapsed = start.elapsed();
    assert_eq!(
        space.count(&template!["fft-result", ValueType::Int, ValueType::Bytes]),
        jobs,
        "every request must have produced a result"
    );
    elapsed
}

fn main() {
    println!("§2.1 — FFT service farm over the tuplespace\n");
    let jobs = 64;
    let fft_size = 256;
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!("{jobs} FFT requests of {fft_size} points each ({cores} CPU core(s) available)\n");
    let base = run_farm(1, jobs, fft_size);
    println!("consumers=1: {base:>8.1?}  (speedup 1.0x)");
    let mut best = 1.0f64;
    for consumers in [2usize, 4, 8] {
        let t = run_farm(consumers, jobs, fft_size);
        let speedup = base.as_secs_f64() / t.as_secs_f64();
        best = best.max(speedup);
        println!("consumers={consumers}: {t:>8.1?}  (speedup {speedup:.1}x)");
    }
    if cores > 1 {
        println!(
            "\nThroughput scales with the number of consumers (up to the {cores} cores\n\
             of this host), with zero coordination code: the anonymous, associative\n\
             take is the whole scheduler."
        );
    } else {
        println!(
            "\nThis host exposes a single CPU, so wall-clock speedup is bounded at 1x —\n\
             but note what the numbers do show: adding consumers costs nothing. The\n\
             anonymous, associative take is the whole scheduler; on a multi-core (or\n\
             multi-node) deployment the same code scales with the consumer count."
        );
    }
}
