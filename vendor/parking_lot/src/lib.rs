//! Minimal, dependency-free stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the (non-poisoning) `parking_lot`
//! API subset this workspace uses: `Mutex::lock` returning a guard
//! directly, and `Condvar::{wait, wait_until, notify_all, notify_one}`
//! taking `&mut MutexGuard`. Poisoned std locks are transparently
//! recovered, matching `parking_lot`'s no-poisoning semantics.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Instant;

/// A mutual-exclusion primitive (non-poisoning facade over `std`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Internally holds an `Option` so [`Condvar`] can temporarily move the
/// `std` guard out while blocking (std's wait consumes the guard).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable (facade over `std::sync::Condvar`).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().expect("waiter exits");
    }
}
