//! Minimal, dependency-free stand-in for `crossbeam`.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is provided,
//! implemented over `std::sync::mpsc`. Error types mirror the crossbeam
//! names so call sites compile unchanged.

/// Multi-producer channels (facade over `std::sync::mpsc`).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// All senders dropped and the queue drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Deadline passed with no message.
        Timeout,
        /// All senders dropped and the queue drained.
        Disconnected,
    }

    /// Sending half of an unbounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvTimeoutError> {
            self.inner
                .recv()
                .map_err(|_| RecvTimeoutError::Disconnected)
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns a queued message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Iterates over messages until all senders are dropped.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    /// Creates an unbounded FIFO channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(7).expect("receiver alive");
            assert_eq!(rx.try_recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_timeout_expires() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
        }
    }
}
