//! Minimal, dependency-free stand-in for `proptest`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of proptest it uses: the [`Strategy`] trait with `prop_map` /
//! `prop_filter`, [`any`] for primitives, range and tuple strategies,
//! `Just`, `prop_oneof!`, `proptest::collection::vec`,
//! `proptest::option::of`, `proptest::sample::Index`, regex-like string
//! strategies for the three pattern shapes the tests use, and the
//! `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate, deliberate for this subset:
//! * no shrinking — failures print the raw generated inputs instead;
//! * a fixed per-test deterministic seed (derived from the test's module
//!   path and name), so failures replay exactly on re-run;
//! * `PROPTEST_CASES` still overrides the case count (default 64).

use std::fmt;
use std::rc::Rc;

/// Number of generated cases per property (override with `PROPTEST_CASES`).
#[must_use]
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Deterministic generator state (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test's fully qualified name, so every test draws an
    /// independent, reproducible sequence.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            state: hash ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift bounded draw; bias is negligible for test sizes.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }
}

/// A source of generated values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> BoxedStrategy<O>
    where
        Self: Sized + 'static,
        O: fmt::Debug + 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        BoxedStrategy::new(move |rng| map(self.new_value(rng)))
    }

    /// Keeps only values passing `keep`, re-drawing otherwise (bounded).
    fn prop_filter<F>(self, whence: &'static str, keep: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        BoxedStrategy::new(move |rng| {
            for _ in 0..1000 {
                let candidate = self.new_value(rng);
                if keep(&candidate) {
                    return candidate;
                }
            }
            panic!("prop_filter({whence:?}) rejected 1000 consecutive draws");
        })
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy::new(move |rng| self.new_value(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    sample: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            sample: Rc::clone(&self.sample),
        }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a sampling function.
    pub fn new(sample: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        Self {
            sample: Rc::new(sample),
        }
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// Uniform choice among type-erased alternatives (used by `prop_oneof!`).
#[must_use]
pub fn union<T: fmt::Debug + 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(
        !options.is_empty(),
        "prop_oneof! needs at least one alternative"
    );
    BoxedStrategy::new(move |rng| {
        let pick = rng.below(options.len() as u64) as usize;
        options[pick].new_value(rng)
    })
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary + 'static>() -> BoxedStrategy<T> {
    BoxedStrategy::new(|rng| T::arbitrary(rng))
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Mix edge values in, as real proptest's binary search
                // around special values tends to surface them.
                match rng.below(16) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        })+
    };
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.below(8) {
            // Raw bit patterns: covers NaN, infinities, subnormals.
            0 | 1 => f64::from_bits(rng.next_u64()),
            2 => 0.0,
            3 => -0.0,
            _ => (rng.uniform() - 0.5) * 2e6,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.below(8) {
            0 | 1 => f32::from_bits(rng.next_u64() as u32),
            2 => 0.0,
            _ => ((rng.uniform() - 0.5) * 2e6) as f32,
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{FFFD}')
    }
}

macro_rules! range_strategies {
    ($($t:ty),+) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.below(span)) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range.
                        return rng.next_u64() as $t;
                    }
                    (start as u64).wrapping_add(rng.below(span)) as $t
                }
            }
        )+
    };
}

range_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategies {
    ($($t:ty),+) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u64;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )+
    };
}

signed_range_strategies!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))+) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )+
    };
}

tuple_strategies! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Regex-like string strategies for the small pattern language the tests
/// use: a single element (`[class]`, `\PC`, or a literal) followed by an
/// optional `{m,n}` repetition, repeated over the pattern.
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

mod pattern {
    use super::TestRng;

    enum Element {
        /// Inclusive char ranges (from a `[...]` class).
        Ranges(Vec<(char, char)>),
        /// `\PC`: any non-control char (printable, incl. non-ASCII).
        NonControl,
        Literal(char),
    }

    impl Element {
        fn sample(&self, rng: &mut TestRng) -> char {
            match self {
                Element::Literal(c) => *c,
                Element::Ranges(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|(lo, hi)| u64::from(*hi as u32 - *lo as u32 + 1))
                        .sum();
                    let mut pick = rng.below(total);
                    for (lo, hi) in ranges {
                        let size = u64::from(*hi as u32 - *lo as u32 + 1);
                        if pick < size {
                            return char::from_u32(*lo as u32 + pick as u32)
                                .expect("range endpoints are chars");
                        }
                        pick -= size;
                    }
                    unreachable!("pick bounded by total")
                }
                Element::NonControl => {
                    // Mostly printable ASCII (covers XML-significant chars),
                    // sometimes wider unicode to exercise UTF-8 paths.
                    if rng.below(4) == 0 {
                        const WIDE: &[char] = &[
                            'é', 'ß', 'λ', 'Ω', '中', '文', '€', '™', '☃', '𝄞', '🦀', '\u{00A0}',
                            '\u{2028}',
                        ];
                        WIDE[rng.below(WIDE.len() as u64) as usize]
                    } else {
                        char::from_u32(0x20 + rng.below(0x5F) as u32).expect("printable ascii")
                    }
                }
            }
        }
    }

    pub(super) fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let element = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .expect("unterminated char class")
                        + i;
                    let mut ranges = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            ranges.push((chars[j], chars[j + 2]));
                            j += 3;
                        } else {
                            ranges.push((chars[j], chars[j]));
                            j += 1;
                        }
                    }
                    i = close + 1;
                    Element::Ranges(ranges)
                }
                '\\' => {
                    assert!(
                        chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                        "unsupported escape in pattern {pattern:?}"
                    );
                    i += 3;
                    Element::NonControl
                }
                c => {
                    i += 1;
                    Element::Literal(c)
                }
            };
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated repetition")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = body.split_once(',').expect("repetition must be {m,n}");
                i = close + 1;
                (
                    lo.parse::<u64>().expect("repetition bound"),
                    hi.parse::<u64>().expect("repetition bound"),
                )
            } else {
                (1, 1)
            };
            let count = min + rng.below(max - min + 1);
            for _ in 0..count {
                out.push(element.sample(rng));
            }
        }
        out
    }
}

/// Collection strategies.
pub mod collection {
    use super::{BoxedStrategy, Strategy, TestRng};
    use std::fmt;

    /// Bounds for a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl SizeRange {
        fn sample(self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max_exclusive - self.min) as u64) as usize
        }
    }

    /// `Vec`s of values from `element`, with length drawn from `size`.
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: fmt::Debug + 'static,
    {
        let size = size.into();
        BoxedStrategy::new(move |rng| {
            let len = size.sample(rng);
            (0..len).map(|_| element.new_value(rng)).collect()
        })
    }
}

/// `Option` strategies.
pub mod option {
    use super::{BoxedStrategy, Strategy, TestRng};
    use std::fmt;

    /// `None` about a quarter of the time, otherwise `Some` of `inner`.
    pub fn of<S>(inner: S) -> BoxedStrategy<Option<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: fmt::Debug + 'static,
    {
        BoxedStrategy::new(move |rng: &mut TestRng| {
            if rng.below(4) == 0 {
                None
            } else {
                Some(inner.new_value(rng))
            }
        })
    }
}

/// Index-into-a-collection strategies.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// A position drawn independently of any particular collection length;
    /// project it with [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Maps this draw onto `[0, len)`.
        ///
        /// # Panics
        /// Panics if `len == 0`.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index(0)");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Self(rng.next_u64() as usize)
        }
    }
}

/// Everything a property-test module conventionally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy,
    };
}

/// Defines property tests: each `fn` runs [`cases()`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases();
                let mut rng = $crate::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted = 0usize;
                let mut attempts = 0usize;
                while accepted < cases && attempts < cases * 16 {
                    attempts += 1;
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    let rendered_inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                            panic!(
                                "property {} failed after {} cases: {}\n  inputs: {}",
                                stringify!($name),
                                accepted,
                                message,
                                rendered_inputs,
                            );
                        }
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside `proptest!`, reporting the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}",
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {left:?}\n right: {right:?}",
                format!($($fmt)+),
            )));
        }
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left != right`\n  both: {left:?}",
            )));
        }
    }};
}

/// Skips the current generated case inside `proptest!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies (all yielding the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::union(::std::vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn determinism_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        let seq_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let seq_c: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (10u16..20).new_value(&mut rng);
            assert!((10..20).contains(&v));
            let s = (-5i64..=5).new_value(&mut rng);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::for_test("strings");
        for _ in 0..200 {
            let s = "[a-z]{0,8}".new_value(&mut rng);
            assert!(
                s.len() <= 8 && s.chars().all(|c| c.is_ascii_lowercase()),
                "{s:?}"
            );
            let p = "[ -~]{0,16}".new_value(&mut rng);
            assert!(p.chars().count() <= 16 && p.chars().all(|c| (' '..='~').contains(&c)));
            let u = "\\PC{0,24}".new_value(&mut rng);
            assert!(
                u.chars().count() <= 24 && u.chars().all(|c| !c.is_control()),
                "{u:?}"
            );
        }
    }

    #[test]
    fn oneof_and_collections_compose() {
        let mut rng = TestRng::for_test("compose");
        let strat = collection::vec(prop_oneof![Just(1u8), 5u8..10, any::<u8>()], 0..5);
        for _ in 0..100 {
            assert!(strat.new_value(&mut rng).len() < 5);
        }
    }

    proptest! {
        /// The proptest! macro itself: args, assume, assert all work.
        #[test]
        fn macro_smoke(x in 0u32..100, flip in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(x % 2 + (x / 2) * 2, x);
            prop_assert!(u32::from(flip) <= 1);
        }
    }
}
