//! Minimal, dependency-free stand-in for `criterion`.
//!
//! Implements just enough of the criterion API for this workspace's
//! `harness = false` benchmarks to compile and produce useful numbers
//! offline: groups, `bench_function` with `&str` or [`BenchmarkId`],
//! `sample_size`, [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a plain median-of-samples wall
//! clock measurement printed to stdout — no statistics engine, plots,
//! or baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter display value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark id; lets `bench_function` accept both
/// `&str` and [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered benchmark id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to the closure given to `bench_function`; runs and times the
/// benchmark routine.
pub struct Bencher {
    samples: usize,
    /// Median time per iteration of the routine, filled in by [`Bencher::iter`].
    result: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, storing a median-of-samples per-iteration cost.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up, and an estimate of a single iteration's cost so slow
        // routines get fewer inner iterations.
        let warmup_start = Instant::now();
        black_box(routine());
        let estimate = warmup_start.elapsed().max(Duration::from_nanos(1));
        let inner =
            (Duration::from_millis(5).as_nanos() / estimate.as_nanos()).clamp(1, 10_000) as usize;
        let mut samples: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..inner {
                black_box(routine());
            }
            samples.push(start.elapsed() / inner as u32);
        }
        samples.sort_unstable();
        self.result = Some(samples[samples.len() / 2]);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its median per-iteration time.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher {
            samples: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        let time = bencher.result.unwrap_or_default();
        println!(
            "{group}/{id:<40} {time:>12?}/iter ({samples} samples)",
            group = self.name,
            samples = self.sample_size,
        );
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Ends the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark driver handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            criterion: self,
            sample_size: 10,
        }
    }

    /// Runs one stand-alone benchmark (group of one).
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        self.benchmark_group(id.clone()).bench_function(id, f);
        self
    }
}

/// Declares a function running each listed benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each listed `criterion_group!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_counts() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function(BenchmarkId::new("f", 1), |b| {
            b.iter(|| black_box(2u64 + 2));
        });
        group.finish();
        assert_eq!(c.benchmarks_run, 1);
    }
}
