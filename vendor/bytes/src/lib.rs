//! Minimal, dependency-free stand-in for the `bytes` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the small subset of the `bytes` API it actually uses:
//! cheaply-cloneable immutable [`Bytes`] (backed by `Arc<[u8]>` with a
//! window), a growable [`BytesMut`] builder, and the one [`BufMut`] method
//! the TCP framing layer calls (`put_u32`, big-endian). Semantics match the
//! real crate for this subset; anything else is intentionally absent.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates `Bytes` from a static slice (copied; the real crate borrows,
    /// which callers cannot observe through this API subset).
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::copy_from_slice(bytes)
    }

    /// Copies `data` into a new `Bytes`.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(data);
        let end = data.len();
        Self {
            data,
            start: 0,
            end,
        }
    }

    /// Number of bytes in the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view sharing the same backing allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice {begin}..{end} out of bounds of {len}"
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&&self[..], f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(vec);
        let end = data.len();
        Self {
            data,
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::copy_from_slice(s.as_bytes())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self[..].iter()
    }
}

/// A growable byte buffer, freezable into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with at least `capacity` bytes reserved.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            vec: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes in the buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Appends `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.vec.extend_from_slice(extend);
    }

    /// Converts the buffer into immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    ///
    /// # Panics
    /// Panics if `at > len`.
    #[must_use]
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(
            at <= self.vec.len(),
            "split_to({at}) out of bounds of {}",
            self.vec.len()
        );
        let tail = self.vec.split_off(at);
        let head = std::mem::replace(&mut self.vec, tail);
        BytesMut { vec: head }
    }

    /// Splits off and returns the bytes from `at` onward; `self` keeps the
    /// first `at` bytes.
    ///
    /// # Panics
    /// Panics if `at > len`.
    #[must_use]
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        BytesMut {
            vec: self.vec.split_off(at),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&&self.vec[..], f)
    }
}

/// Write-side buffer trait (subset: only what the workspace uses).
pub trait BufMut {
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, n: u32);

    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u32(&mut self, n: u32) {
        self.vec.extend_from_slice(&n.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u32(&mut self, n: u32) {
        self.extend_from_slice(&n.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_and_slice() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(..).len(), 3);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3, 4, 5]));
    }

    #[test]
    fn bytes_mut_split_semantics() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u32(0xAABBCCDD);
        m.extend_from_slice(b"xyz");
        assert_eq!(m.len(), 7);
        let head = m.split_to(4);
        assert_eq!(&head[..], &[0xAA, 0xBB, 0xCC, 0xDD]);
        assert_eq!(&m[..], b"xyz");
        let mut m2 = BytesMut::new();
        m2.extend_from_slice(b"abcdef");
        let tail = m2.split_off(2);
        assert_eq!(&m2[..], b"ab");
        assert_eq!(&tail.freeze()[..], b"cdef");
    }
}
